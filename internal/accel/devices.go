package accel

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/tcmalloc"
)

// FixedLatency is a stateless TCA that models "a block of software replaced
// by a hardware unit of known latency". It returns its first argument
// unchanged (so workloads can thread a value through it) and generates no
// memory traffic. It is the device behind the synthetic microbenchmark,
// where the acceleratable region is pure compute.
type FixedLatency struct {
	// Latency is the execution time of one invocation in cycles.
	Latency int
	// Invocations counts calls (diagnostics).
	Invocations uint64
}

// NewFixedLatency returns a device with the given per-invocation latency.
func NewFixedLatency(latency int) *FixedLatency {
	if latency < 1 {
		panic(fmt.Sprintf("accel: latency %d must be >= 1", latency))
	}
	return &FixedLatency{Latency: latency}
}

// Name implements isa.AccelDevice.
func (d *FixedLatency) Name() string { return fmt.Sprintf("fixed-%dcyc", d.Latency) }

// Invoke implements isa.AccelDevice.
func (d *FixedLatency) Invoke(call isa.AccelCall, _ isa.WordReader) isa.AccelResult {
	d.Invocations++
	return isa.AccelResult{Value: call.Args[0], Latency: d.Latency}
}

// Heap device operation kinds (the OpAccel immediate).
const (
	HeapMalloc int64 = iota // Args[0] = size in bytes; result = pointer
	HeapFree                // Args[0] = pointer; result = 1 if freed
)

// Heap is the heap-manager TCA of §V-B: hardware tables holding a subset of
// TCMalloc's free lists serve malloc and free in a single cycle. Requests
// always hit (the benchmark's common-case constraint), so there is no
// fallback path and no memory traffic — this is the paper's low-bandwidth
// accelerator.
//
// Heap implements isa.AccelJournal so the L modes can roll back
// speculatively performed allocations on misspeculation.
type Heap struct {
	Alloc *tcmalloc.Allocator
	// Latency of one invocation; the paper's proposed accelerator is
	// single-cycle.
	Latency int

	// Misses counts invocations that would need the software slow path
	// (empty list or unknown pointer); the benchmark keeps this zero.
	Misses uint64
}

// NewHeap wraps an allocator as a single-cycle TCA.
func NewHeap(a *tcmalloc.Allocator) *Heap {
	return &Heap{Alloc: a, Latency: 1}
}

// Name implements isa.AccelDevice.
func (h *Heap) Name() string { return "heap-tca" }

// Invoke implements isa.AccelDevice.
func (h *Heap) Invoke(call isa.AccelCall, _ isa.WordReader) isa.AccelResult {
	switch call.Kind {
	case HeapMalloc:
		ptr := h.Alloc.Malloc(call.Args[0])
		if ptr == 0 {
			h.Misses++
		}
		return isa.AccelResult{Value: ptr, Latency: h.Latency}
	case HeapFree:
		var v uint64
		if h.Alloc.Free(call.Args[0]) {
			v = 1
		} else {
			h.Misses++
		}
		return isa.AccelResult{Value: v, Latency: h.Latency}
	default:
		panic(fmt.Sprintf("accel: heap TCA kind %d unknown", call.Kind))
	}
}

// Mark implements isa.AccelJournal.
func (h *Heap) Mark() int { return h.Alloc.Mark() }

// Rewind implements isa.AccelJournal.
func (h *Heap) Rewind(mark int) { h.Alloc.Rewind(mark) }

// MatMul is the matrix-multiplication TCA of §V-C: a t×t double-precision
// multiply-accumulate (C += A·B) that operates through memory loads and
// stores rather than dedicated matrix registers, as the paper's
// implementation does. Each invocation loads the A, B and C tiles, performs
// the MAC, and stores C back; every row of a tile is one contiguous request
// of t×8 bytes (≤ 64B for t ≤ 8, the paper's maximum request width). This
// is the paper's high-bandwidth accelerator.
type MatMul struct {
	// Tile is the edge length t (2, 4 or 8 in the paper).
	Tile int
	// StrideBytes is the row stride of the matrices the tiles live in.
	StrideBytes uint64
	// ComputeLatency is the pure compute time of the t×t MAC, excluding
	// memory. Defaults to 2·t when zero (one column per cycle through a
	// t-wide FMA array, two passes).
	ComputeLatency int

	Invocations uint64

	pending []isa.AccelStore
}

// MatMul call kind.
const MatMulMAC int64 = 0

// NewMatMul returns a t×t multiply-accumulate TCA over matrices with the
// given row stride in bytes.
func NewMatMul(tile int, strideBytes uint64) *MatMul {
	switch tile {
	case 2, 4, 8:
	default:
		panic(fmt.Sprintf("accel: tile %d not supported (want 2, 4 or 8)", tile))
	}
	if strideBytes%8 != 0 || strideBytes < uint64(tile)*8 {
		panic(fmt.Sprintf("accel: stride %d invalid for tile %d", strideBytes, tile))
	}
	return &MatMul{Tile: tile, StrideBytes: strideBytes, ComputeLatency: 2 * tile}
}

// Name implements isa.AccelDevice.
func (d *MatMul) Name() string { return fmt.Sprintf("matmul-%dx%d", d.Tile, d.Tile) }

// Invoke implements isa.AccelDevice. Args[0], Args[1], Args[2] are the base
// addresses of the A, B and C tiles (top-left element).
func (d *MatMul) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	if call.Kind != MatMulMAC {
		panic(fmt.Sprintf("accel: matmul kind %d unknown", call.Kind))
	}
	d.Invocations++
	t := d.Tile
	aBase, bBase, cBase := call.Args[0], call.Args[1], call.Args[2]

	// Functional: C += A·B over t×t float64 tiles.
	a := d.loadTile(mem, aBase)
	b := d.loadTile(mem, bBase)
	c := d.loadTile(mem, cBase)
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			sum := c[i*t+j]
			for k := 0; k < t; k++ {
				sum += a[i*t+k] * b[k*t+j]
			}
			c[i*t+j] = sum
		}
	}

	// Timing trace: one contiguous request per tile row, plus the C
	// write-back rows; and the pending stores for the caller to apply.
	rowBytes := t * 8
	ops := make([]isa.AccelMemOp, 0, 4*t)
	d.pending = d.pending[:0]
	for _, base := range []uint64{aBase, bBase, cBase} {
		for r := 0; r < t; r++ {
			ops = append(ops, isa.AccelMemOp{Addr: base + uint64(r)*d.StrideBytes, Size: rowBytes})
		}
	}
	for r := 0; r < t; r++ {
		rowAddr := cBase + uint64(r)*d.StrideBytes
		ops = append(ops, isa.AccelMemOp{Addr: rowAddr, Size: rowBytes, Store: true})
		for j := 0; j < t; j++ {
			d.pending = append(d.pending, isa.AccelStore{
				Addr: rowAddr + uint64(j)*8,
				Data: floatBits(c[r*t+j]),
			})
		}
	}
	lat := d.ComputeLatency
	if lat <= 0 {
		lat = 2 * t
	}
	return isa.AccelResult{Value: 0, Latency: lat, MemOps: ops}
}

// PendingStores implements isa.AccelStorer.
func (d *MatMul) PendingStores() []isa.AccelStore { return d.pending }

// UsesProgramMemory implements isa.AccelMemoryUser: the matmul TCA operates
// through memory loads and stores.
func (d *MatMul) UsesProgramMemory() bool { return true }

func (d *MatMul) loadTile(mem isa.WordReader, base uint64) []float64 {
	t := d.Tile
	out := make([]float64, t*t)
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			out[i*t+j] = mem.LoadFloat(base + uint64(i)*d.StrideBytes + uint64(j)*8)
		}
	}
	return out
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
