// Package accel defines the tightly-coupled accelerator (TCA) devices used
// by the paper's evaluation and the four core-integration modes the
// analytical model distinguishes.
//
// A mode states whether the TCA may overlap with leading (L) instructions —
// i.e. execute speculatively before older instructions commit — and whether
// trailing (T) instructions may dispatch and execute while the TCA is in
// flight. Supporting either direction of concurrency costs hardware
// (rollback, dependency checking); the paper's model quantifies what that
// hardware buys.
package accel

import "fmt"

// Mode is one of the paper's four TCA integration modes.
type Mode uint8

const (
	// NLNT — Non-Leading & Non-Trailing: the TCA waits for the ROB to
	// drain before executing, and dispatch stalls until the TCA commits.
	// Simplest hardware: no rollback, no dependency checks.
	NLNT Mode = iota
	// LNT — Leading & Non-Trailing: the TCA executes speculatively, but
	// dispatch stalls until it commits.
	LNT
	// NLT — Non-Leading & Trailing: the TCA waits for the ROB to drain,
	// but trailing instructions dispatch immediately (dependency checks
	// required).
	NLT
	// LT — Leading & Trailing: full out-of-order integration; best
	// performance, most hardware.
	LT

	numModes
)

// AllModes lists the modes in the order the paper's figures use
// (left to right: L_T, NL_T, L_NT, NL_NT).
var AllModes = []Mode{LT, NLT, LNT, NLNT}

// Leading reports whether the TCA may execute speculatively, overlapping
// with leading instructions.
func (m Mode) Leading() bool { return m == LNT || m == LT }

// Trailing reports whether trailing instructions may dispatch while the TCA
// is in flight.
func (m Mode) Trailing() bool { return m == NLT || m == LT }

// String returns the paper's name for the mode (e.g. "L_T").
func (m Mode) String() string {
	switch m {
	case NLNT:
		return "NL_NT"
	case LNT:
		return "L_NT"
	case NLT:
		return "NL_T"
	case LT:
		return "L_T"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode converts a paper-style mode name to a Mode.
func ParseMode(s string) (Mode, error) {
	for _, m := range AllModes {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("accel: unknown mode %q (want one of L_T, NL_T, L_NT, NL_NT)", s)
}
