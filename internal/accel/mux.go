package accel

import (
	"fmt"

	"repro/internal/isa"
)

// Mux routes invocations to one of several sub-devices, modeling a core
// with multiple tightly-coupled accelerators (the GreenDroid scenario:
// many specialized function units sharing the TCA interface). The OpAccel
// immediate encodes both the target device and its operation:
//
//	kind = deviceIndex*KindStride + deviceKind
//
// Timing composes naturally: the simulator still sees one TCA "port"
// (invocations serialize at the interface, as a shared accelerator complex
// would), while functional behaviour and per-invocation latency come from
// the routed sub-device.
type Mux struct {
	devices []isa.AccelDevice
	// journal is the at-most-one journaled sub-device.
	journal isa.AccelJournal
	// lastStorer is the device that served the most recent invocation,
	// for PendingStores delegation.
	lastStorer isa.AccelStorer
	usesMemory bool
}

// KindStride separates device kind spaces in the OpAccel immediate.
const KindStride = 256

// NewMux builds a multi-accelerator complex. At most one sub-device may
// hold journaled internal state (speculative rollback delegates to it);
// more would need a composite journal, which no workload here requires.
func NewMux(devices ...isa.AccelDevice) (*Mux, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("accel: mux needs at least one device")
	}
	m := &Mux{devices: devices}
	for _, d := range devices {
		if j, ok := d.(isa.AccelJournal); ok {
			if m.journal != nil {
				return nil, fmt.Errorf("accel: mux supports at most one journaled device")
			}
			m.journal = j
		}
		if devUses(d) {
			m.usesMemory = true
		}
	}
	return m, nil
}

func devUses(d isa.AccelDevice) bool {
	if u, ok := d.(isa.AccelMemoryUser); ok {
		return u.UsesProgramMemory()
	}
	_, stores := d.(isa.AccelStorer)
	return stores
}

// MuxKind encodes a (device index, sub-kind) pair for OpAccel.
func MuxKind(device int, kind int64) int64 {
	return int64(device)*KindStride + kind
}

// Name implements isa.AccelDevice.
func (m *Mux) Name() string { return fmt.Sprintf("mux-%d", len(m.devices)) }

// UsesProgramMemory implements isa.AccelMemoryUser.
func (m *Mux) UsesProgramMemory() bool { return m.usesMemory }

// Invoke implements isa.AccelDevice.
func (m *Mux) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	idx := int(call.Kind / KindStride)
	if idx < 0 || idx >= len(m.devices) {
		panic(fmt.Sprintf("accel: mux kind %d routes to device %d of %d", call.Kind, idx, len(m.devices)))
	}
	dev := m.devices[idx]
	sub := call
	sub.Kind = call.Kind % KindStride
	res := dev.Invoke(sub, mem)
	if s, ok := dev.(isa.AccelStorer); ok {
		m.lastStorer = s
	} else {
		m.lastStorer = nil
	}
	return res
}

// PendingStores implements isa.AccelStorer, delegating to the device that
// served the last invocation.
func (m *Mux) PendingStores() []isa.AccelStore {
	if m.lastStorer == nil {
		return nil
	}
	return m.lastStorer.PendingStores()
}

// Mark implements isa.AccelJournal.
func (m *Mux) Mark() int {
	if m.journal == nil {
		return 0
	}
	return m.journal.Mark()
}

// Rewind implements isa.AccelJournal.
func (m *Mux) Rewind(mark int) {
	if m.journal != nil {
		m.journal.Rewind(mark)
	}
}

// Device returns the i'th sub-device (stats inspection).
func (m *Mux) Device(i int) isa.AccelDevice { return m.devices[i] }
