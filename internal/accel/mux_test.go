package accel

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/tcmalloc"
)

func TestMuxRouting(t *testing.T) {
	d0 := NewFixedLatency(5)
	d1 := NewFixedLatency(50)
	m, err := NewMux(d0, d1)
	if err != nil {
		t.Fatal(err)
	}
	r0 := m.Invoke(isa.AccelCall{Kind: MuxKind(0, 0), Args: [3]uint64{7}}, nil)
	r1 := m.Invoke(isa.AccelCall{Kind: MuxKind(1, 0), Args: [3]uint64{9}}, nil)
	if r0.Latency != 5 || r1.Latency != 50 {
		t.Errorf("latencies = %d, %d; want 5, 50", r0.Latency, r1.Latency)
	}
	if r0.Value != 7 || r1.Value != 9 {
		t.Errorf("values = %d, %d", r0.Value, r1.Value)
	}
	if d0.Invocations != 1 || d1.Invocations != 1 {
		t.Error("routing did not reach both devices")
	}
}

func TestMuxSubKindPassthrough(t *testing.T) {
	alloc := tcmalloc.New(0x10000, 1<<20)
	alloc.Refill(0, 8)
	heap := NewHeap(alloc)
	m, err := NewMux(NewFixedLatency(3), heap)
	if err != nil {
		t.Fatal(err)
	}
	// Device 1 sub-kind HeapMalloc.
	r := m.Invoke(isa.AccelCall{Kind: MuxKind(1, HeapMalloc), Args: [3]uint64{16}}, nil)
	if r.Value == 0 {
		t.Error("malloc through mux failed")
	}
	r = m.Invoke(isa.AccelCall{Kind: MuxKind(1, HeapFree), Args: [3]uint64{r.Value}}, nil)
	if r.Value != 1 {
		t.Error("free through mux failed")
	}
}

func TestMuxJournalDelegation(t *testing.T) {
	alloc := tcmalloc.New(0x10000, 1<<20)
	alloc.Refill(0, 8)
	heap := NewHeap(alloc)
	m, err := NewMux(NewFixedLatency(3), heap)
	if err != nil {
		t.Fatal(err)
	}
	mark := m.Mark()
	r := m.Invoke(isa.AccelCall{Kind: MuxKind(1, HeapMalloc), Args: [3]uint64{16}}, nil)
	if !alloc.Allocated(r.Value) {
		t.Fatal("allocation missing")
	}
	m.Rewind(mark)
	if alloc.Allocated(r.Value) {
		t.Error("mux journal rewind did not reach the heap device")
	}
}

func TestMuxRejectsTwoJournaledDevices(t *testing.T) {
	a1 := tcmalloc.New(0x10000, 1<<20)
	a2 := tcmalloc.New(0x20000, 1<<20)
	if _, err := NewMux(NewHeap(a1), NewHeap(a2)); err == nil {
		t.Error("two journaled devices accepted")
	}
	if _, err := NewMux(); err == nil {
		t.Error("empty mux accepted")
	}
}

func TestMuxMemoryUse(t *testing.T) {
	m1, _ := NewMux(NewFixedLatency(1))
	if m1.UsesProgramMemory() {
		t.Error("pure-compute mux claims memory use")
	}
	m2, _ := NewMux(NewFixedLatency(1), NewStrCmp())
	if !m2.UsesProgramMemory() {
		t.Error("mux with strcmp must use memory")
	}
}

func TestMuxPendingStoresDelegation(t *testing.T) {
	mm := NewMatMul(2, 16)
	m, _ := NewMux(NewFixedLatency(1), mm)
	mem := isa.NewMemory()
	m.Invoke(isa.AccelCall{Kind: MuxKind(1, MatMulMAC), Args: [3]uint64{0x100, 0x200, 0x300}}, mem)
	if len(m.PendingStores()) == 0 {
		t.Error("matmul stores not delegated through mux")
	}
	m.Invoke(isa.AccelCall{Kind: MuxKind(0, 0), Args: [3]uint64{1}}, mem)
	if len(m.PendingStores()) != 0 {
		t.Error("stale stores after a non-storing invocation")
	}
}
