package accel

import (
	"fmt"

	"repro/internal/isa"
)

// DAE call kind.
const DAEReduce int64 = 0

// DAE is a decoupled access/execute streaming accelerator: an access slice
// that issues contiguous burst loads runs ahead of an execute slice that
// reduces the loaded words. It is the first device family to use the engine
// contract's multi-phase schedules — a scalar latency cannot express "the
// loads of chunk i+1 stream under the compute of chunk i", which is exactly
// what makes a DAE organization worth building.
//
// One invocation reduces Args[1] contiguous 8-byte words starting at Args[0]
// (a sum modulo 2^64) and returns the sum. The timing schedule is one
// pipeline-fill phase of Startup cycles followed by one Overlap stream
// phase: the access slice issues every chunk as a contiguous burst of up to
// ChunkWords words (<= 64 bytes, the paper's maximum request width) at the
// head of the phase — running arbitrarily far ahead of the execute slice,
// so outstanding misses overlap through the hierarchy's MSHRs — while the
// execute slice charges ComputePerChunk cycles per chunk. The phase costs
// whichever slice is slower, never the sum; the cycles the faster slice
// hides surface in the simulator's AccelOverlapCycles statistic.
type DAE struct {
	// ChunkWords is the access-slice burst length in 8-byte words (1..8,
	// keeping each burst within one 64-byte request).
	ChunkWords int
	// ComputePerChunk is the execute slice's occupancy per chunk in cycles.
	ComputePerChunk int
	// Startup is the one-time pipeline-fill cost per invocation, charged
	// before the first chunk.
	Startup int

	// Invocations and WordsStreamed count calls and reduced words
	// (diagnostics).
	Invocations   uint64
	WordsStreamed uint64
}

// NewDAE returns a streaming reducer with the given burst length, per-chunk
// execute occupancy and startup cost.
func NewDAE(chunkWords, computePerChunk, startup int) *DAE {
	if chunkWords < 1 || chunkWords > 8 {
		panic(fmt.Sprintf("accel: dae chunk of %d words exceeds one 64B request (want 1..8)", chunkWords))
	}
	if computePerChunk < 1 {
		panic(fmt.Sprintf("accel: dae compute %d per chunk must be >= 1", computePerChunk))
	}
	if startup < 0 {
		panic(fmt.Sprintf("accel: dae startup %d must be >= 0", startup))
	}
	return &DAE{ChunkWords: chunkWords, ComputePerChunk: computePerChunk, Startup: startup}
}

// Name implements isa.AccelDevice.
func (d *DAE) Name() string { return fmt.Sprintf("dae-%dw", d.ChunkWords) }

// UsesProgramMemory implements isa.AccelMemoryUser: the access slice streams
// program memory.
func (d *DAE) UsesProgramMemory() bool { return true }

// Invoke implements isa.AccelDevice. Args[0] is the 8-byte-aligned base
// address, Args[1] the number of words to reduce.
func (d *DAE) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	if call.Kind != DAEReduce {
		panic(fmt.Sprintf("accel: dae kind %d unknown", call.Kind))
	}
	base, words := call.Args[0], int(call.Args[1])
	if words < 1 {
		panic(fmt.Sprintf("accel: dae invoked over %d words", words))
	}
	d.Invocations++
	d.WordsStreamed += uint64(words)

	var sum uint64
	chunks := (words + d.ChunkWords - 1) / d.ChunkWords
	sched := make([]isa.AccelPhase, 0, 2)
	if d.Startup > 0 {
		sched = append(sched, isa.AccelPhase{Compute: d.Startup})
	}
	ops := make([]isa.AccelMemOp, 0, chunks)
	for c := 0; c < chunks; c++ {
		lo := c * d.ChunkWords
		hi := lo + d.ChunkWords
		if hi > words {
			hi = words
		}
		for w := lo; w < hi; w++ {
			sum += mem.Load(base + uint64(w)*8)
		}
		ops = append(ops, isa.AccelMemOp{Addr: base + uint64(lo)*8, Size: (hi - lo) * 8})
	}
	sched = append(sched, isa.AccelPhase{
		Compute: chunks * d.ComputePerChunk,
		Overlap: true,
		MemOps:  ops,
	})
	return isa.AccelResult{Value: sum, Schedule: sched}
}
