package accel

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/redfa"
)

// Regex is a regular-expression matching TCA modeled on the regex
// accelerators of the paper's reference [6] — the last of Fig. 2's
// fine-grained markers. It walks a table-driven DFA held in program memory
// (layout per redfa.Layout): one chunked read per 8 input symbols, plus
// one *serial* table read per symbol (each transition's address depends on
// the previous transition's result — the pointer-chasing behaviour that
// makes software regex slow and hardware regex engines latency-bound).
//
// The device is stateless and speculation-safe: all state is in memory,
// reads go through the overlay, and it writes nothing.
type Regex struct {
	// Layout locates the DFA tables.
	Layout redfa.Layout
	// StepLatency is the per-symbol compute cost; SetupLatency the fixed
	// invocation cost. Defaults 1 and 2.
	StepLatency  int
	SetupLatency int
	// ChunkWords is the input-read width in words (default 8 = 64B).
	ChunkWords int

	Invocations uint64
	Symbols     uint64
	Matches     uint64
}

// Regex operation kind (OpAccel immediate).
const (
	RegexMatch int64 = iota // Args[0] = input string base; result = 1 on match
)

// NewRegex returns a matcher TCA over the serialized DFA.
func NewRegex(layout redfa.Layout) *Regex {
	if layout.States < 1 || layout.Start == 0 {
		panic(fmt.Sprintf("accel: invalid regex layout %+v", layout))
	}
	return &Regex{Layout: layout, StepLatency: 1, SetupLatency: 2, ChunkWords: 8}
}

// Name implements isa.AccelDevice.
func (d *Regex) Name() string { return fmt.Sprintf("regex-%dstates", d.Layout.States) }

// UsesProgramMemory implements isa.AccelMemoryUser.
func (d *Regex) UsesProgramMemory() bool { return true }

// Invoke implements isa.AccelDevice.
func (d *Regex) Invoke(call isa.AccelCall, mem isa.WordReader) isa.AccelResult {
	if call.Kind != RegexMatch {
		panic(fmt.Sprintf("accel: regex kind %d unknown", call.Kind))
	}
	d.Invocations++
	in := call.Args[0]
	res := isa.AccelResult{Latency: d.SetupLatency}
	state := uint64(d.Layout.Start)

	for pos := 0; ; pos++ {
		// One chunked input read per ChunkWords symbols.
		if pos%d.ChunkWords == 0 {
			res.MemOps = append(res.MemOps, isa.AccelMemOp{
				Addr: in + uint64(pos)*8, Size: d.ChunkWords * 8,
			})
		}
		sym := mem.Load(in + uint64(pos)*8)
		if sym >= redfa.Terminator {
			break
		}
		d.Symbols++
		res.Latency += d.StepLatency
		// Serial transition read: address depends on the current state.
		tAddr := d.Layout.TableBase + (state*256+sym)*8
		res.MemOps = append(res.MemOps, isa.AccelMemOp{Addr: tAddr, Size: 8, Serial: true})
		state = mem.Load(tAddr)
		if state == 0 {
			res.Value = 0
			return res
		}
	}
	// Finality check.
	fAddr := d.Layout.FinalBase + state*8
	res.MemOps = append(res.MemOps, isa.AccelMemOp{Addr: fAddr, Size: 8, Serial: true})
	res.Value = mem.Load(fAddr)
	if res.Value != 0 {
		d.Matches++
	}
	return res
}
