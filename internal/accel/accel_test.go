package accel

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/tcmalloc"
)

func TestModeFlags(t *testing.T) {
	cases := []struct {
		m                 Mode
		leading, trailing bool
		name              string
	}{
		{NLNT, false, false, "NL_NT"},
		{LNT, true, false, "L_NT"},
		{NLT, false, true, "NL_T"},
		{LT, true, true, "L_T"},
	}
	for _, c := range cases {
		if c.m.Leading() != c.leading || c.m.Trailing() != c.trailing {
			t.Errorf("%s: (L,T) = (%v,%v), want (%v,%v)",
				c.name, c.m.Leading(), c.m.Trailing(), c.leading, c.trailing)
		}
		if c.m.String() != c.name {
			t.Errorf("String() = %q, want %q", c.m.String(), c.name)
		}
		m, err := ParseMode(c.name)
		if err != nil || m != c.m {
			t.Errorf("ParseMode(%q) = (%v, %v)", c.name, m, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus mode")
	}
	if len(AllModes) != 4 {
		t.Errorf("AllModes has %d entries, want 4", len(AllModes))
	}
}

func TestFixedLatency(t *testing.T) {
	d := NewFixedLatency(7)
	res := d.Invoke(isa.AccelCall{Args: [3]uint64{42, 0, 0}}, nil)
	if res.Value != 42 || res.Latency != 7 || len(res.MemOps) != 0 {
		t.Errorf("result = %+v, want value 42, latency 7, no mem ops", res)
	}
	if d.Invocations != 1 {
		t.Errorf("invocations = %d, want 1", d.Invocations)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewFixedLatency(0) must panic")
			}
		}()
		NewFixedLatency(0)
	}()
}

func TestHeapTCAMallocFree(t *testing.T) {
	a := tcmalloc.New(0x10000, 1<<20)
	a.Refill(1, 2)
	h := NewHeap(a)
	res := h.Invoke(isa.AccelCall{Kind: HeapMalloc, Args: [3]uint64{48, 0, 0}}, nil)
	if res.Value == 0 {
		t.Fatal("malloc through TCA failed")
	}
	if res.Latency != 1 {
		t.Errorf("latency = %d, want 1 (single-cycle accelerator)", res.Latency)
	}
	if len(res.MemOps) != 0 {
		t.Error("heap TCA must not generate memory traffic")
	}
	freeRes := h.Invoke(isa.AccelCall{Kind: HeapFree, Args: [3]uint64{res.Value, 0, 0}}, nil)
	if freeRes.Value != 1 {
		t.Error("free through TCA failed")
	}
	if h.Misses != 0 {
		t.Errorf("misses = %d, want 0", h.Misses)
	}
}

func TestHeapTCAMissCounting(t *testing.T) {
	a := tcmalloc.New(0x10000, 1<<20)
	h := NewHeap(a)
	h.Invoke(isa.AccelCall{Kind: HeapMalloc, Args: [3]uint64{8, 0, 0}}, nil) // empty list
	h.Invoke(isa.AccelCall{Kind: HeapFree, Args: [3]uint64{0xbad, 0, 0}}, nil)
	if h.Misses != 2 {
		t.Errorf("misses = %d, want 2", h.Misses)
	}
}

func TestHeapTCAJournalRollback(t *testing.T) {
	a := tcmalloc.New(0x10000, 1<<20)
	a.Refill(0, 4)
	h := NewHeap(a)
	mark := h.Mark()
	res := h.Invoke(isa.AccelCall{Kind: HeapMalloc, Args: [3]uint64{8, 0, 0}}, nil)
	if !a.Allocated(res.Value) {
		t.Fatal("allocation not visible")
	}
	h.Rewind(mark)
	if a.Allocated(res.Value) {
		t.Error("speculative allocation survived rollback")
	}
	// Replay is deterministic.
	res2 := h.Invoke(isa.AccelCall{Kind: HeapMalloc, Args: [3]uint64{8, 0, 0}}, nil)
	if res2.Value != res.Value {
		t.Errorf("replay returned %#x, want %#x", res2.Value, res.Value)
	}
}

// tileMem builds a memory image with A, B, C matrices of size n×n (row
// stride n*8) at the returned bases.
func tileMem(n int) (m *isa.Memory, aBase, bBase, cBase uint64) {
	m = isa.NewMemory()
	aBase, bBase, cBase = 0x10000, 0x20000, 0x30000
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			off := uint64(i*n+j) * 8
			m.StoreFloat(aBase+off, float64(i+1))
			m.StoreFloat(bBase+off, float64(j+1))
			m.StoreFloat(cBase+off, 1.0)
		}
	}
	return m, aBase, bBase, cBase
}

func TestMatMulTCAFunctional(t *testing.T) {
	for _, tile := range []int{2, 4, 8} {
		m, aB, bB, cB := tileMem(tile)
		d := NewMatMul(tile, uint64(tile*8))
		res := d.Invoke(isa.AccelCall{Kind: MatMulMAC, Args: [3]uint64{aB, bB, cB}}, m)
		isa.ApplyStores(m, d.PendingStores())

		// A[i][k] = i+1, B[k][j] = j+1: C[i][j] = 1 + t*(i+1)*(j+1).
		for i := 0; i < tile; i++ {
			for j := 0; j < tile; j++ {
				want := 1 + float64(tile)*float64(i+1)*float64(j+1)
				got := m.LoadFloat(cB + uint64(i*tile+j)*8)
				if got != want {
					t.Fatalf("tile %d: C[%d][%d] = %v, want %v", tile, i, j, got, want)
				}
			}
		}
		// Memory trace: 3t reads + t writes, each t*8 bytes.
		reads, writes := 0, 0
		for _, op := range res.MemOps {
			if op.Size != tile*8 {
				t.Errorf("tile %d: mem op size %d, want %d", tile, op.Size, tile*8)
			}
			if op.Store {
				writes++
			} else {
				reads++
			}
		}
		if reads != 3*tile || writes != tile {
			t.Errorf("tile %d: %d reads / %d writes, want %d/%d", tile, reads, writes, 3*tile, tile)
		}
		if res.Latency != 2*tile {
			t.Errorf("tile %d: latency %d, want %d", tile, res.Latency, 2*tile)
		}
	}
}

func TestMatMulTCAStride(t *testing.T) {
	// Tiles embedded in an 8×8 matrix (stride 64B), operating on the
	// bottom-right 2×2 corner.
	n := 8
	m, aB, bB, cB := tileMem(n)
	stride := uint64(n * 8)
	d := NewMatMul(2, stride)
	corner := uint64(6*n+6) * 8
	d.Invoke(isa.AccelCall{Kind: MatMulMAC, Args: [3]uint64{aB + corner, bB + corner, cB + corner}}, m)
	isa.ApplyStores(m, d.PendingStores())
	// A[6..7][6..7] rows are 7,8; B cols are 7,8.
	// C[0][0] (global [6][6]) = 1 + 7*7 + 7*7 = 99.
	if got := m.LoadFloat(cB + corner); got != 99 {
		t.Errorf("strided C[6][6] = %v, want 99", got)
	}
	// Untouched element outside the tile is unchanged.
	if got := m.LoadFloat(cB); got != 1 {
		t.Errorf("C[0][0] = %v, want 1 (outside tile)", got)
	}
}

func TestMatMulValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewMatMul(3, 64) },
		func() { NewMatMul(2, 12) }, // unaligned stride
		func() { NewMatMul(8, 32) }, // stride < tile row
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid matmul config")
				}
			}()
			f()
		}()
	}
}

// Devices must satisfy the optional interfaces the simulator dispatches on.
func TestInterfaceCompliance(t *testing.T) {
	var _ isa.AccelDevice = (*FixedLatency)(nil)
	var _ isa.AccelDevice = (*Heap)(nil)
	var _ isa.AccelJournal = (*Heap)(nil)
	var _ isa.AccelDevice = (*MatMul)(nil)
	var _ isa.AccelStorer = (*MatMul)(nil)
}
