package accel

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

func daeMem(base uint64, words int) *isa.Memory {
	m := isa.NewMemory()
	for w := 0; w < words; w++ {
		m.Store(base+uint64(w)*8, uint64(w)*3+1)
	}
	return m
}

func TestDAEFunctional(t *testing.T) {
	const base, words = 0x4000, 21
	m := daeMem(base, words)
	d := NewDAE(8, 5, 12)
	res := d.Invoke(isa.AccelCall{Kind: DAEReduce, Args: [3]uint64{base, words, 0}}, m)

	var want uint64
	for w := 0; w < words; w++ {
		want += uint64(w)*3 + 1
	}
	if res.Value != want {
		t.Errorf("sum = %d, want %d", res.Value, want)
	}
	if d.Invocations != 1 || d.WordsStreamed != words {
		t.Errorf("counters = (%d, %d), want (1, %d)", d.Invocations, d.WordsStreamed, words)
	}

	// Schedule shape: one startup phase, then one overlapped stream phase
	// whose access slice issues ceil(21/8) = 3 bursts (the last a 5-word
	// remainder) against 3 chunks' worth of execute-slice compute.
	sched := res.Schedule
	if len(sched) != 2 {
		t.Fatalf("schedule has %d phases, want 2", len(sched))
	}
	if sched[0].Compute != 12 || sched[0].Overlap || len(sched[0].MemOps) != 0 {
		t.Errorf("startup phase = %+v, want pure 12-cycle compute", sched[0])
	}
	stream := sched[1]
	if !stream.Overlap || stream.Compute != 3*5 {
		t.Errorf("stream phase = %+v, want overlapped %d-cycle compute", stream, 3*5)
	}
	if len(stream.MemOps) != 3 {
		t.Fatalf("stream phase has %d bursts, want 3", len(stream.MemOps))
	}
	for i, op := range stream.MemOps {
		wantSize := 64
		if i == 2 {
			wantSize = 5 * 8
		}
		if op.Store || op.Serial || op.Size != wantSize || op.Addr != base+uint64(i*8)*8 {
			t.Errorf("burst %d = %+v, want %dB contiguous load at %#x",
				i, op, wantSize, base+uint64(i*8)*8)
		}
	}
}

func TestDAENoStartupPhase(t *testing.T) {
	m := daeMem(0x4000, 4)
	d := NewDAE(4, 3, 0)
	res := d.Invoke(isa.AccelCall{Kind: DAEReduce, Args: [3]uint64{0x4000, 4, 0}}, m)
	if len(res.Schedule) != 1 {
		t.Errorf("zero-startup schedule has %d phases, want 1", len(res.Schedule))
	}
}

func TestDAEValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewDAE(0, 1, 0) },
		func() { NewDAE(9, 1, 0) }, // burst wider than 64B
		func() { NewDAE(4, 0, 0) },
		func() { NewDAE(4, 1, -1) },
		func() { NewDAE(4, 1, 0).Invoke(isa.AccelCall{Kind: 99}, nil) },
		func() { NewDAE(4, 1, 0).Invoke(isa.AccelCall{Kind: DAEReduce}, nil) }, // zero words
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid DAE config or call")
				}
			}()
			f()
		}()
	}
}

// lcgSteps replicates the loop accelerator's datapath on the host.
func lcgSteps(seed uint64, iters int) uint64 {
	x := seed
	for i := 0; i < iters; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	return x
}

func TestLoopNestFunctional(t *testing.T) {
	d := NewLoopNest(3, 2, 50)
	res := d.Invoke(isa.AccelCall{Kind: LoopNestRun, Args: [3]uint64{4, 7, 0}}, nil)

	// 4^3 = 64 innermost iterations.
	if want := lcgSteps(7, 64); res.Value != want {
		t.Errorf("value = %#x, want %#x", res.Value, want)
	}
	if d.Invocations != 1 || d.Iterations != 64 {
		t.Errorf("counters = (%d, %d), want (1, 64)", d.Invocations, d.Iterations)
	}
	sched := res.Schedule
	if len(sched) != 2 {
		t.Fatalf("schedule has %d phases, want 2 (config + run)", len(sched))
	}
	if sched[0].Compute != 50 || len(sched[0].MemOps) != 0 {
		t.Errorf("config phase = %+v, want pure 50-cycle compute", sched[0])
	}
	if sched[1].Compute != 64*2 || len(sched[1].MemOps) != 0 {
		t.Errorf("run phase = %+v, want pure %d-cycle compute", sched[1], 64*2)
	}
}

func TestLoopNestFreeConfig(t *testing.T) {
	d := NewLoopNest(1, 3, 0)
	res := d.Invoke(isa.AccelCall{Kind: LoopNestRun, Args: [3]uint64{5, 1, 0}}, nil)
	if len(res.Schedule) != 1 || res.Schedule[0].Compute != 15 {
		t.Errorf("schedule = %+v, want one 15-cycle phase", res.Schedule)
	}
}

func TestLoopNestValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLoopNest(0, 1, 0) },
		func() { NewLoopNest(1, 0, 0) },
		func() { NewLoopNest(1, 1, -1) },
		func() { NewLoopNest(1, 1, 0).Invoke(isa.AccelCall{Kind: 99}, nil) },
		func() { NewLoopNest(1, 1, 0).Invoke(isa.AccelCall{Kind: LoopNestRun}, nil) }, // zero trips
		func() { // iteration bound: 2^21 exceeds the 2^20 cap
			NewLoopNest(21, 1, 0).Invoke(isa.AccelCall{Kind: LoopNestRun, Args: [3]uint64{2, 0, 0}}, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid loop nest config or call")
				}
			}()
			f()
		}()
	}
}

func TestEngineDeviceInterfaceCompliance(t *testing.T) {
	var _ isa.AccelDevice = (*DAE)(nil)
	var _ isa.AccelMemoryUser = (*DAE)(nil)
	var _ isa.AccelSnapshotter = (*DAE)(nil)
	var _ isa.AccelDevice = (*LoopNest)(nil)
	var _ isa.AccelSnapshotter = (*LoopNest)(nil)
}

// TestSnapshotRoundTripAllCounters mutates every device's diagnostic state
// through real invocations, round-trips it through SnapshotState/RestoreState
// into a fresh device of the same configuration, and requires the restored
// device to equal the original field-for-field (reflect.DeepEqual). This is
// the dynamic half of the counter-coverage guarantee; simlint R9's
// device-snapshot audit is the static half.
func TestSnapshotRoundTripAllCounters(t *testing.T) {
	m := daeMem(0x4000, 16)
	cases := []struct {
		name  string
		dev   isa.AccelDevice
		fresh isa.AccelDevice
		drive func(d isa.AccelDevice)
	}{
		{
			"fixed", NewFixedLatency(9), NewFixedLatency(9),
			func(d isa.AccelDevice) {
				d.Invoke(isa.AccelCall{Args: [3]uint64{1, 0, 0}}, nil)
				d.Invoke(isa.AccelCall{Args: [3]uint64{2, 0, 0}}, nil)
			},
		},
		{
			"dae", NewDAE(8, 4, 10), NewDAE(8, 4, 10),
			func(d isa.AccelDevice) {
				d.Invoke(isa.AccelCall{Kind: DAEReduce, Args: [3]uint64{0x4000, 16, 0}}, m)
				d.Invoke(isa.AccelCall{Kind: DAEReduce, Args: [3]uint64{0x4000, 3, 0}}, m)
			},
		},
		{
			"loopnest", NewLoopNest(2, 3, 20), NewLoopNest(2, 3, 20),
			func(d isa.AccelDevice) {
				d.Invoke(isa.AccelCall{Kind: LoopNestRun, Args: [3]uint64{3, 11, 0}}, nil)
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.drive(c.dev)
			snap := c.dev.(isa.AccelSnapshotter).SnapshotState()
			if err := c.fresh.(isa.AccelSnapshotter).RestoreState(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if !reflect.DeepEqual(c.fresh, c.dev) {
				t.Errorf("restored device diverges:\n got %+v\nwant %+v", c.fresh, c.dev)
			}
			// Truncated frames must be rejected, not silently zeroed.
			if len(snap) > 0 {
				if err := c.fresh.(isa.AccelSnapshotter).RestoreState(snap[:len(snap)-1]); err == nil {
					t.Error("truncated frame accepted")
				}
			}
		})
	}
}
