package accel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/tcmalloc"
)

// Device state snapshots for simulator checkpointing (isa.AccelSnapshotter).
//
// Most devices carry only diagnostic counters between invocations; their
// frames are a handful of integers. The heap TCA additionally owns the full
// allocator state (free lists, ownership map, speculation journal), and the
// mux composes the frames of its sub-devices in order. Per-invocation
// scratch (the pending-store slices filled by Invoke and consumed in the
// same simulator cycle) is dead at any cycle boundary and is deliberately
// not captured — see DESIGN.md "Warm-state checkpointing".

// devFrame is a little-endian append/consume cursor for snapshot frames.
type devFrame struct {
	buf []byte
	err error
}

func (f *devFrame) putU64(v uint64) {
	f.buf = binary.LittleEndian.AppendUint64(f.buf, v)
}

func (f *devFrame) getU64() uint64 {
	if f.err != nil {
		return 0
	}
	if len(f.buf) < 8 {
		f.err = fmt.Errorf("accel: snapshot frame truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(f.buf)
	f.buf = f.buf[8:]
	return v
}

func (f *devFrame) putBytes(b []byte) {
	f.putU64(uint64(len(b)))
	f.buf = append(f.buf, b...)
}

func (f *devFrame) getBytes() []byte {
	n := f.getU64()
	if f.err != nil {
		return nil
	}
	if uint64(len(f.buf)) < n {
		f.err = fmt.Errorf("accel: snapshot frame truncated")
		return nil
	}
	b := f.buf[:n]
	f.buf = f.buf[n:]
	return b
}

func (f *devFrame) done(what string) error {
	if f.err != nil {
		return f.err
	}
	if len(f.buf) != 0 {
		return fmt.Errorf("accel: %s snapshot has %d trailing bytes", what, len(f.buf))
	}
	return nil
}

// SnapshotState implements isa.AccelSnapshotter.
func (d *FixedLatency) SnapshotState() []byte {
	var f devFrame
	f.putU64(d.Invocations)
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (d *FixedLatency) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	d.Invocations = f.getU64()
	return f.done("fixed-latency")
}

// SnapshotState implements isa.AccelSnapshotter. The frame embeds the full
// allocator state, journal included, so speculative invocations in flight
// at the checkpoint can still be rolled back after resume.
func (h *Heap) SnapshotState() []byte {
	var f devFrame
	f.putU64(h.Misses)
	s := h.Alloc.Snapshot()
	f.putU64(s.Arena)
	f.putU64(s.ArenaHi)
	f.putU64(s.Mallocs)
	f.putU64(s.Frees)
	f.putU64(s.Refills)
	f.putU64(uint64(int64(s.LiveBlocks)))
	for c := range s.Free {
		f.putU64(uint64(len(s.Free[c])))
		for _, ptr := range s.Free[c] {
			f.putU64(ptr)
		}
	}
	f.putU64(uint64(len(s.Owner)))
	for _, o := range s.Owner {
		f.putU64(o.Ptr)
		f.putU64(uint64(int64(o.Class)))
	}
	f.putU64(uint64(len(s.Journal)))
	for _, op := range s.Journal {
		f.putU64(uint64(int64(op.Class)))
		f.putU64(op.Ptr)
		if op.Push {
			f.putU64(1)
		} else {
			f.putU64(0)
		}
	}
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (h *Heap) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	h.Misses = f.getU64()
	var s tcmalloc.State
	s.Arena = f.getU64()
	s.ArenaHi = f.getU64()
	s.Mallocs = f.getU64()
	s.Frees = f.getU64()
	s.Refills = f.getU64()
	s.LiveBlocks = int(int64(f.getU64()))
	for c := range s.Free {
		n := int(f.getU64())
		if f.err != nil {
			return f.err
		}
		s.Free[c] = make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			s.Free[c] = append(s.Free[c], f.getU64())
		}
	}
	n := int(f.getU64())
	if f.err != nil {
		return f.err
	}
	s.Owner = make([]tcmalloc.OwnerPair, 0, n)
	for i := 0; i < n; i++ {
		s.Owner = append(s.Owner, tcmalloc.OwnerPair{Ptr: f.getU64(), Class: int(int64(f.getU64()))})
	}
	n = int(f.getU64())
	if f.err != nil {
		return f.err
	}
	s.Journal = make([]tcmalloc.JournalOp, 0, n)
	for i := 0; i < n; i++ {
		op := tcmalloc.JournalOp{Class: int(int64(f.getU64())), Ptr: f.getU64()}
		op.Push = f.getU64() != 0
		s.Journal = append(s.Journal, op)
	}
	if err := f.done("heap"); err != nil {
		return err
	}
	return h.Alloc.Restore(s)
}

// SnapshotState implements isa.AccelSnapshotter. The pending-store scratch
// is per-invocation and dead at cycle boundaries; only the counter persists.
func (d *MatMul) SnapshotState() []byte {
	var f devFrame
	f.putU64(d.Invocations)
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (d *MatMul) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	d.Invocations = f.getU64()
	return f.done("matmul")
}

// SnapshotState implements isa.AccelSnapshotter. The hash table itself
// lives in program memory (captured with the memory image); only counters
// persist in the device.
func (d *HashMap) SnapshotState() []byte {
	var f devFrame
	f.putU64(d.Lookups)
	f.putU64(d.Inserts)
	f.putU64(d.Probes)
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (d *HashMap) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	d.Lookups = f.getU64()
	d.Inserts = f.getU64()
	d.Probes = f.getU64()
	return f.done("hashmap")
}

// SnapshotState implements isa.AccelSnapshotter.
func (d *Regex) SnapshotState() []byte {
	var f devFrame
	f.putU64(d.Invocations)
	f.putU64(d.Symbols)
	f.putU64(d.Matches)
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (d *Regex) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	d.Invocations = f.getU64()
	d.Symbols = f.getU64()
	d.Matches = f.getU64()
	return f.done("regex")
}

// SnapshotState implements isa.AccelSnapshotter.
func (d *StrCmp) SnapshotState() []byte {
	var f devFrame
	f.putU64(d.Invocations)
	f.putU64(d.WordsTotal)
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (d *StrCmp) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	d.Invocations = f.getU64()
	d.WordsTotal = f.getU64()
	return f.done("strcmp")
}

// SnapshotState implements isa.AccelSnapshotter.
func (d *DAE) SnapshotState() []byte {
	var f devFrame
	f.putU64(d.Invocations)
	f.putU64(d.WordsStreamed)
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (d *DAE) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	d.Invocations = f.getU64()
	d.WordsStreamed = f.getU64()
	return f.done("dae")
}

// SnapshotState implements isa.AccelSnapshotter.
func (d *LoopNest) SnapshotState() []byte {
	var f devFrame
	f.putU64(d.Invocations)
	f.putU64(d.Iterations)
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (d *LoopNest) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	d.Invocations = f.getU64()
	d.Iterations = f.getU64()
	return f.done("loopnest")
}

// SnapshotState implements isa.AccelSnapshotter: the mux's own fields are
// either configuration (devices, usesMemory) or per-invocation scratch
// (lastStorer), so the frame is just the sub-device frames in order.
func (m *Mux) SnapshotState() []byte {
	var f devFrame
	f.putU64(uint64(len(m.devices)))
	for _, d := range m.devices {
		snap, ok := d.(isa.AccelSnapshotter)
		if !ok {
			// Unreachable for the devices in this repo (all implement the
			// interface); a foreign stateless device contributes an empty
			// frame.
			f.putBytes(nil)
			continue
		}
		f.putBytes(snap.SnapshotState())
	}
	return f.buf
}

// RestoreState implements isa.AccelSnapshotter.
func (m *Mux) RestoreState(data []byte) error {
	f := devFrame{buf: data}
	if n := int(f.getU64()); f.err == nil && n != len(m.devices) {
		return fmt.Errorf("accel: mux snapshot has %d device frames, mux holds %d", n, len(m.devices))
	}
	for _, d := range m.devices {
		frame := f.getBytes()
		if f.err != nil {
			return f.err
		}
		if snap, ok := d.(isa.AccelSnapshotter); ok {
			if err := snap.RestoreState(frame); err != nil {
				return err
			}
		} else if len(frame) != 0 {
			return fmt.Errorf("accel: mux snapshot has state for non-snapshottable device %q", d.Name())
		}
	}
	return f.done("mux")
}
