package accel

import (
	"fmt"

	"repro/internal/isa"
)

// LoopNest call kind.
const LoopNestRun int64 = 0

// loopNestMaxIterations bounds one invocation's functional work; workloads
// stay far below it (it exists to fail fast on a bad trip count, not to be
// approached).
const loopNestMaxIterations = 1 << 20

// LoopNest is a loop accelerator: a hardware loop nest of fixed depth whose
// one-time configuration cost (programming bounds, strides and the datapath)
// amortizes over the trips^Depth innermost iterations it then executes
// back-to-back. It is the second engine-contract device family: the schedule
// is a configuration phase followed by an execution phase, so the invocation
// granularity visible to the core is decoupled from the iteration
// granularity the datapath runs at — the crossover against a monolithic TCA
// of equal per-iteration throughput moves with the trip count.
//
// One invocation runs a depth-Depth nest with Args[0] trips per level,
// iterating a 64-bit mixing function from seed Args[1] once per innermost
// iteration, and returns the final value. The device is register-only: no
// program-memory traffic, so (like the heap TCA) invocations skip LSQ
// ordering.
type LoopNest struct {
	// Depth is the nest depth (>= 1).
	Depth int
	// IterLatency is the datapath's cycles per innermost iteration.
	IterLatency int
	// ConfigLatency is the one-time nest-configuration cost per invocation.
	ConfigLatency int

	// Invocations and Iterations count calls and executed innermost
	// iterations (diagnostics).
	Invocations uint64
	Iterations  uint64
}

// NewLoopNest returns a loop accelerator of the given nest depth,
// per-iteration latency and configuration cost.
func NewLoopNest(depth, iterLatency, configLatency int) *LoopNest {
	if depth < 1 {
		panic(fmt.Sprintf("accel: loop nest depth %d must be >= 1", depth))
	}
	if iterLatency < 1 {
		panic(fmt.Sprintf("accel: loop nest iteration latency %d must be >= 1", iterLatency))
	}
	if configLatency < 0 {
		panic(fmt.Sprintf("accel: loop nest config latency %d must be >= 0", configLatency))
	}
	return &LoopNest{Depth: depth, IterLatency: iterLatency, ConfigLatency: configLatency}
}

// Name implements isa.AccelDevice.
func (d *LoopNest) Name() string { return fmt.Sprintf("loopnest-d%d", d.Depth) }

// Invoke implements isa.AccelDevice. Args[0] is the trip count per nest
// level, Args[1] the seed value threaded through the datapath.
func (d *LoopNest) Invoke(call isa.AccelCall, _ isa.WordReader) isa.AccelResult {
	if call.Kind != LoopNestRun {
		panic(fmt.Sprintf("accel: loop nest kind %d unknown", call.Kind))
	}
	trips := call.Args[0]
	if trips < 1 {
		panic(fmt.Sprintf("accel: loop nest trip count %d must be >= 1", trips))
	}
	iters := uint64(1)
	for l := 0; l < d.Depth; l++ {
		iters *= trips
		if iters > loopNestMaxIterations {
			panic(fmt.Sprintf("accel: loop nest %d^%d iterations exceeds bound %d", trips, d.Depth, loopNestMaxIterations))
		}
	}
	d.Invocations++
	d.Iterations += iters

	// The datapath: one 64-bit LCG step per innermost iteration.
	x := call.Args[1]
	for i := uint64(0); i < iters; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}

	sched := make([]isa.AccelPhase, 0, 2)
	if d.ConfigLatency > 0 {
		sched = append(sched, isa.AccelPhase{Compute: d.ConfigLatency})
	}
	sched = append(sched, isa.AccelPhase{Compute: int(iters) * d.IterLatency})
	return isa.AccelResult{Value: x, Schedule: sched}
}
