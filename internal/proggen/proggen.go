// Package proggen generates random, structurally-terminating programs for
// differential testing of the out-of-order simulator against the functional
// interpreter. Programs use bounded counted loops and forward conditional
// skips, so every generated program halts; data values, memory traffic and
// branch outcomes are otherwise adversarial.
package proggen

import (
	"math/rand"

	"repro/internal/accel"
	"repro/internal/isa"
)

// Options controls program generation.
type Options struct {
	// Blocks is the number of top-level code blocks.
	Blocks int
	// MaxBody is the maximum instructions per block body.
	MaxBody int
	// MaxTrips bounds loop trip counts.
	MaxTrips int
	// MemWords is the size of the scratch data region in 8-byte words.
	MemWords int
	// AccelEvery inserts a fixed-latency TCA invocation roughly every N
	// block bodies (0 disables accel ops).
	AccelEvery int
	// HeapAccel switches inserted TCA ops to heap malloc/free pairs
	// (requires an accel.Heap device at execution time).
	HeapAccel bool
	// FP enables floating-point instructions.
	FP bool
}

// DefaultOptions returns moderately-sized generation parameters.
func DefaultOptions() Options {
	return Options{Blocks: 12, MaxBody: 14, MaxTrips: 5, MemWords: 64, FP: true}
}

// Registers reserved by the generator.
const (
	regBase   = 12 // holds the scratch region base address
	regCtrLo  = 8  // loop counters occupy r8..r11
	numCtrs   = 4
	dataLo    = 1 // data registers r1..r7
	numData   = 7
	fpLo      = 1 // f1..f7
	numFPData = 7
	memBase   = 0x4000
)

// Generate builds a random program from the seed. The same seed always
// yields the same program.
func Generate(seed int64, opt Options) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder()

	// Seed data registers and scratch memory deterministically.
	b.MovI(isa.R(regBase), memBase)
	for i := 0; i < numData; i++ {
		b.MovI(isa.R(dataLo+i), int64(rng.Intn(1<<16)-1<<15))
	}
	if opt.FP {
		for i := 0; i < numFPData; i++ {
			b.FMovI(isa.F(fpLo+i), float64(rng.Intn(64))/4+0.5)
		}
	}
	for w := 0; w < opt.MemWords; w += 4 {
		b.InitWord(memBase+uint64(w*8), rng.Uint64()%1000)
	}

	g := &gen{rng: rng, b: b, opt: opt}
	for blk := 0; blk < opt.Blocks; blk++ {
		g.block(blk)
	}
	b.Halt()
	return b.MustBuild()
}

type gen struct {
	rng    *rand.Rand
	b      *isa.Builder
	opt    Options
	labels int
	ctr    int
}

func (g *gen) newLabel() string {
	g.labels++
	return "L" + itoa(g.labels)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// block emits either a counted loop or a straight-line body with an
// optional forward skip.
func (g *gen) block(idx int) {
	switch g.rng.Intn(3) {
	case 0: // counted loop
		ctr := isa.R(regCtrLo + g.ctr%numCtrs)
		g.ctr++
		trips := 1 + g.rng.Intn(g.opt.MaxTrips)
		top := g.newLabel()
		g.b.MovI(ctr, int64(trips))
		g.b.Label(top)
		g.body(idx)
		g.b.AddI(ctr, ctr, -1)
		g.b.Bne(ctr, isa.RZero, top)
	case 1: // forward skip on a data-dependent condition
		skip := g.newLabel()
		a := g.dataReg()
		c := g.dataReg()
		g.b.Slt(c, a, g.dataReg())
		g.b.Beq(c, isa.RZero, skip)
		g.body(idx)
		g.b.Label(skip)
	default:
		g.body(idx)
	}
}

// body emits a run of random data instructions.
func (g *gen) body(blockIdx int) {
	n := 1 + g.rng.Intn(g.opt.MaxBody)
	for i := 0; i < n; i++ {
		g.inst()
	}
	if g.opt.AccelEvery > 0 && blockIdx%g.opt.AccelEvery == 0 {
		if g.opt.HeapAccel {
			// Balanced malloc/free so free lists never empty.
			sz := g.dataReg()
			g.b.MovI(sz, int64(8+g.rng.Intn(120)))
			ptr := g.dataReg()
			g.b.Accel(ptr, accel.HeapMalloc, sz)
			g.b.Accel(g.dataReg(), accel.HeapFree, ptr)
		} else {
			g.b.Accel(g.dataReg(), 0, g.dataReg())
		}
	}
}

func (g *gen) dataReg() isa.Reg { return isa.R(dataLo + g.rng.Intn(numData)) }
func (g *gen) fpReg() isa.Reg   { return isa.F(fpLo + g.rng.Intn(numFPData)) }

// memOff returns a word-aligned offset within the scratch region.
func (g *gen) memOff() int64 { return int64(g.rng.Intn(g.opt.MemWords)) * 8 }

func (g *gen) inst() {
	choices := 8
	if g.opt.FP {
		choices = 11
	}
	switch g.rng.Intn(choices) {
	case 0:
		g.b.Add(g.dataReg(), g.dataReg(), g.dataReg())
	case 1:
		g.b.Sub(g.dataReg(), g.dataReg(), g.dataReg())
	case 2:
		g.b.Mul(g.dataReg(), g.dataReg(), g.dataReg())
	case 3:
		switch g.rng.Intn(4) {
		case 0:
			g.b.Div(g.dataReg(), g.dataReg(), g.dataReg())
		case 1:
			g.b.Rem(g.dataReg(), g.dataReg(), g.dataReg())
		case 2:
			g.b.Shl(g.dataReg(), g.dataReg(), g.dataReg())
		default:
			g.b.Shr(g.dataReg(), g.dataReg(), g.dataReg())
		}
	case 4:
		switch g.rng.Intn(3) {
		case 0:
			g.b.And(g.dataReg(), g.dataReg(), g.dataReg())
		case 1:
			g.b.Or(g.dataReg(), g.dataReg(), g.dataReg())
		default:
			g.b.Xor(g.dataReg(), g.dataReg(), g.dataReg())
		}
	case 5:
		g.b.AddI(g.dataReg(), g.dataReg(), int64(g.rng.Intn(256)-128))
	case 6:
		g.b.Load(g.dataReg(), isa.R(regBase), g.memOff())
	case 7:
		g.b.Store(g.dataReg(), isa.R(regBase), g.memOff())
	case 8:
		switch g.rng.Intn(3) {
		case 0:
			g.b.FAdd(g.fpReg(), g.fpReg(), g.fpReg())
		case 1:
			g.b.FMul(g.fpReg(), g.fpReg(), g.fpReg())
		default:
			g.b.FSub(g.fpReg(), g.fpReg(), g.fpReg())
		}
	case 9:
		g.b.FMA(g.fpReg(), g.fpReg(), g.fpReg(), g.fpReg())
	default:
		if g.rng.Intn(2) == 0 {
			g.b.FLoad(g.fpReg(), isa.R(regBase), g.memOff())
		} else {
			g.b.FStore(g.fpReg(), isa.R(regBase), g.memOff())
		}
	}
}
