package proggen

import (
	"testing"

	"repro/internal/isa"
)

func TestGenerateProducesValidPrograms(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		prog := Generate(seed, DefaultOptions())
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		it := isa.NewInterp(prog, nil)
		if err := it.Run(10_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if it.Stats.Retired == 0 {
			t.Fatalf("seed %d: empty execution", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, DefaultOptions())
	b := Generate(7, DefaultOptions())
	if len(a.Code) != len(b.Code) {
		t.Fatal("lengths differ")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(1, DefaultOptions())
	b := Generate(2, DefaultOptions())
	same := len(a.Code) == len(b.Code)
	if same {
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical programs")
	}
}

func TestGenerateAccelVariants(t *testing.T) {
	opt := DefaultOptions()
	opt.AccelEvery = 1
	prog := Generate(3, opt)
	found := false
	for _, in := range prog.Code {
		if in.Op == isa.OpAccel {
			found = true
			break
		}
	}
	if !found {
		t.Error("AccelEvery=1 produced no accel instructions")
	}
	// Without the option there must be none.
	plain := Generate(3, DefaultOptions())
	for _, in := range plain.Code {
		if in.Op == isa.OpAccel {
			t.Fatal("accel instruction without AccelEvery")
		}
	}
}

func TestGenerateNoFPOption(t *testing.T) {
	opt := DefaultOptions()
	opt.FP = false
	prog := Generate(11, opt)
	for i, in := range prog.Code {
		if in.Op.IsFP() {
			t.Fatalf("fp instruction at %d with FP disabled: %v", i, in)
		}
	}
}
