// Package logca implements the LogCA performance model for hardware
// accelerators (Altaf & Wood, IEEE Computer Architecture Letters 2015),
// the prior model the paper contrasts its TCA model with.
//
// LogCA targets loosely-coupled accelerators: a host offloads g bytes
// (the granularity), pays a fixed invocation overhead o and an interface
// latency that scales with the offload size, and — crucially — sits idle
// while the accelerator computes. The paper's §II observes that both
// assumptions are fine for coarse-grained accelerators and break down for
// TCAs: fine-grained invocations make pipeline interactions (drains,
// barriers, overlap) first-order effects that LogCA has no terms for, and
// an out-of-order host is not idle during accelerator execution.
//
// The experiments harness uses this package to regenerate that contrast
// quantitatively (extension figure E1).
package logca

import (
	"fmt"
	"math"
)

// Params are the five LogCA parameters plus the complexity exponent.
type Params struct {
	// Latency is L: interface cycles per unit of granularity moved to or
	// from the accelerator (link/DMA time).
	Latency float64
	// Overhead is o: fixed host cycles to set up and dispatch one
	// offload (driver, queue, doorbell — or just an instruction for a
	// tightly-coupled design).
	Overhead float64
	// ComputeIndex is C: host cycles of computation per unit of
	// granularity.
	ComputeIndex float64
	// Accel is A: the accelerator's peak speedup over the host on the
	// offloaded computation.
	Accel float64
	// Beta is the algorithmic complexity exponent: host time for
	// granularity g is C·g^β (β=1 linear, β>1 superlinear — superlinear
	// kernels amortize interface costs faster).
	Beta float64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.Latency < 0 || p.Overhead < 0:
		return fmt.Errorf("logca: latency and overhead must be >= 0")
	case p.ComputeIndex <= 0:
		return fmt.Errorf("logca: computational index must be positive")
	case p.Accel <= 0:
		return fmt.Errorf("logca: acceleration must be positive")
	case p.Beta <= 0:
		return fmt.Errorf("logca: beta must be positive")
	}
	return nil
}

// HostTime returns the unaccelerated execution time for granularity g:
// C·g^β.
func (p Params) HostTime(g float64) float64 {
	return p.ComputeIndex * math.Pow(g, p.Beta)
}

// AccelTime returns the accelerated execution time for granularity g:
// o + L·g + C·g^β / A. The host is assumed idle throughout (LogCA's
// serialization assumption).
func (p Params) AccelTime(g float64) float64 {
	return p.Overhead + p.Latency*g + p.HostTime(g)/p.Accel
}

// Speedup returns HostTime/AccelTime for granularity g.
func (p Params) Speedup(g float64) float64 {
	return p.HostTime(g) / p.AccelTime(g)
}

// PeakSpeedup is LogCA's asymptotic bound: A (never A+1 — the model has no
// host/accelerator overlap).
func (p Params) PeakSpeedup() float64 { return p.Accel }

// BreakEven returns g1, the smallest granularity with Speedup >= 1, found
// by bisection over [lo, hi]. ok is false when the accelerator never
// breaks even in the range.
func (p Params) BreakEven(lo, hi float64) (g float64, ok bool) {
	return p.granularityFor(1, lo, hi)
}

// GHalf returns g_{A/2}, the granularity achieving half the peak speedup —
// LogCA's headline design metric.
func (p Params) GHalf(lo, hi float64) (g float64, ok bool) {
	return p.granularityFor(p.Accel/2, lo, hi)
}

// granularityFor finds the smallest g in [lo, hi] with Speedup(g) >= target.
// Speedup is monotonically nondecreasing in g for β >= 1 (interface costs
// amortize), which the bisection relies on.
func (p Params) granularityFor(target, lo, hi float64) (float64, bool) {
	if lo <= 0 || hi <= lo {
		return 0, false
	}
	if p.Speedup(hi) < target {
		return 0, false
	}
	if p.Speedup(lo) >= target {
		return lo, true
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric midpoint: g spans decades
		if p.Speedup(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// FromTCA maps a TCA operating point onto LogCA terms so the two models
// can be compared on the same axis: granularity g in baseline instructions,
// C = 1/IPC host cycles per instruction, β = 1 (the paper's interval
// framing is linear in instructions), o = the dispatch cost of the TCA
// instruction (≈1 cycle), L = 0 (register/L1-coupled, no DMA).
func FromTCA(ipc, accelFactor float64) Params {
	return Params{
		Latency:      0,
		Overhead:     1,
		ComputeIndex: 1 / ipc,
		Accel:        accelFactor,
		Beta:         1,
	}
}
