package logca

import (
	"math"
	"testing"
	"testing/quick"
)

func valid() Params {
	return Params{Latency: 0.1, Overhead: 500, ComputeIndex: 2, Accel: 10, Beta: 1}
}

func TestValidate(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Latency = -1 },
		func(p *Params) { p.Overhead = -1 },
		func(p *Params) { p.ComputeIndex = 0 },
		func(p *Params) { p.Accel = 0 },
		func(p *Params) { p.Beta = 0 },
	}
	for i, mutate := range bad {
		p := valid()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTimes(t *testing.T) {
	p := valid()
	if got := p.HostTime(100); got != 200 {
		t.Errorf("HostTime(100) = %v, want 200", got)
	}
	// o + L·g + C·g/A = 500 + 10 + 20.
	if got := p.AccelTime(100); math.Abs(got-530) > 1e-9 {
		t.Errorf("AccelTime(100) = %v, want 530", got)
	}
	if got := p.Speedup(100); math.Abs(got-200.0/530) > 1e-9 {
		t.Errorf("Speedup(100) = %v", got)
	}
}

func TestAsymptotes(t *testing.T) {
	p := valid()
	// Tiny granularity: overhead dominates, slowdown.
	if s := p.Speedup(1); s >= 1 {
		t.Errorf("Speedup(1) = %v, want < 1 (overhead-dominated)", s)
	}
	// With L > 0 the asymptote is C/(L + C/A), not A.
	asym := p.ComputeIndex / (p.Latency + p.ComputeIndex/p.Accel)
	if s := p.Speedup(1e9); math.Abs(s-asym) > 1e-3 {
		t.Errorf("Speedup(1e9) = %v, want ~%v", s, asym)
	}
	// With L = 0 the asymptote is exactly A.
	p.Latency = 0
	if s := p.Speedup(1e12); math.Abs(s-p.Accel) > 1e-3 {
		t.Errorf("zero-latency asymptote = %v, want %v", s, p.Accel)
	}
	if p.PeakSpeedup() != p.Accel {
		t.Error("LogCA peak must be A — the model has no host overlap")
	}
}

func TestBreakEven(t *testing.T) {
	p := valid()
	g1, ok := p.BreakEven(1, 1e9)
	if !ok {
		t.Fatal("no break-even found")
	}
	if s := p.Speedup(g1); math.Abs(s-1) > 0.01 {
		t.Errorf("Speedup(g1=%v) = %v, want ~1", g1, s)
	}
	// Analytical check for β=1: speedup=1 at g = o / (C - L - C/A).
	want := p.Overhead / (p.ComputeIndex - p.Latency - p.ComputeIndex/p.Accel)
	if math.Abs(g1-want)/want > 0.01 {
		t.Errorf("g1 = %v, want %v", g1, want)
	}
	// An accelerator slower than the interface never breaks even.
	p.Latency = 5 // > C
	if _, ok := p.BreakEven(1, 1e9); ok {
		t.Error("break-even found for an interface-bound accelerator")
	}
}

func TestGHalf(t *testing.T) {
	p := valid()
	p.Latency = 0
	g, ok := p.GHalf(1, 1e12)
	if !ok {
		t.Fatal("no g_{A/2} found")
	}
	if s := p.Speedup(g); math.Abs(s-p.Accel/2) > 0.05 {
		t.Errorf("Speedup(gA/2) = %v, want %v", s, p.Accel/2)
	}
	// β=1, L=0: speedup = g / (o/C + g/A) = A/2 at g = o·A/C.
	want := p.Overhead * p.Accel / p.ComputeIndex
	if math.Abs(g-want)/want > 0.01 {
		t.Errorf("gA/2 = %v, want %v", g, want)
	}
}

func TestSuperlinearKernelsAmortizeFaster(t *testing.T) {
	lin := valid()
	super := valid()
	super.Beta = 2
	g1lin, ok1 := lin.BreakEven(1, 1e9)
	g1sup, ok2 := super.BreakEven(1, 1e9)
	if !ok1 || !ok2 {
		t.Fatal("break-even missing")
	}
	if g1sup >= g1lin {
		t.Errorf("superlinear break-even %v not below linear %v", g1sup, g1lin)
	}
}

// Property: speedup is monotone nondecreasing in g and bounded by A for
// every valid parameter draw with L=0.
func TestSpeedupMonotoneBounded(t *testing.T) {
	f := func(oRaw, cRaw, aRaw uint8) bool {
		p := Params{
			Overhead:     1 + float64(oRaw),
			ComputeIndex: 0.1 + float64(cRaw)/16,
			Accel:        1 + float64(aRaw)/8,
			Beta:         1,
		}
		prev := 0.0
		for g := 1.0; g < 1e8; g *= 10 {
			s := p.Speedup(g)
			if s < prev-1e-12 || s > p.Accel+1e-9 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFromTCA(t *testing.T) {
	p := FromTCA(2.0, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ComputeIndex != 0.5 || p.Accel != 3 || p.Latency != 0 {
		t.Errorf("FromTCA mapping wrong: %+v", p)
	}
	// A tightly-coupled mapping breaks even at tiny granularity.
	g1, ok := p.BreakEven(1, 1e6)
	if !ok || g1 > 10 {
		t.Errorf("TCA-mapped break-even = %v (%v), want small", g1, ok)
	}
}
