package scenario

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/sim"
)

// goldenProgram is a tiny fixed instruction stream with one init word —
// small enough that the golden digests below are cheap to regenerate,
// rich enough to exercise every encoded program field.
func goldenProgram(t testing.TB) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 5)
	b.MovI(isa.R(2), 7)
	b.Add(isa.R(3), isa.R(1), isa.R(2))
	b.MovI(isa.R(4), 0x1000)
	b.Load(isa.R(5), isa.R(4), 0)
	b.Add(isa.R(3), isa.R(3), isa.R(5))
	b.InitWord(0x1000, 42)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGoldenDigests pins the canonical encoding for the stock core
// configurations across all four TCA modes. A failure here means the
// encoding changed — field set, order, width, or canonicalization rule.
// That is only acceptable together with a SchemeVersion bump (so stale
// disk blobs miss instead of serving wrong bytes); bump it, then
// regenerate these constants from the failure output.
func TestGoldenDigests(t *testing.T) {
	golden := []struct {
		core string
		mode accel.Mode
		want string
	}{
		{"hp", accel.LT, "7b187ea3485ef7888fa8d4ae420c055184a48e2f90d75fbd8d4bcc5b46a423fc"},
		{"hp", accel.NLT, "2cab94f77a8be7da1fa94041e91d5f002e65960edc96ebb0f6a85bf3eddb8414"},
		{"hp", accel.LNT, "cc2b8c9b66a1c21b51880b618700fa4dfe7d7870420191021fbe819c475b3b43"},
		{"hp", accel.NLNT, "c8aae6fe670fa53bb6693a174eb07734b9d99015795dc48ccd2438a805ea4065"},
		{"lp", accel.LT, "b9f6d95b0337423653a9e28cdfa1fa7845435a671ae25693066b7217d234345a"},
		{"lp", accel.NLT, "2f862c71ff3add6661ff23531a31cacb74d3fd607bf45e0543743033e358de78"},
		{"lp", accel.LNT, "5899a450eb6834024f9581e3b376736761985bca049ba5aaddf7d9c11f4f3afc"},
		{"lp", accel.NLNT, "4e9846b274504f33d1b379eddffd9097f9219f6f182741f4e3102a6c6f3d58c0"},
	}
	prog := goldenProgram(t)
	for _, g := range golden {
		cfg := sim.HighPerfConfig()
		if g.core == "lp" {
			cfg = sim.LowPerfConfig()
		}
		cfg.Mode = g.mode
		spec := Spec{Config: cfg, Program: prog, MaxCycles: 100000}
		if got := spec.Digest().String(); got != g.want {
			t.Errorf("%s/%s: digest %s, want %s", g.core, g.mode, got, g.want)
		}
	}
}

// TestDigestIgnoresNeutralFields: fields erased by canonicalization —
// labels for humans, and NoFastForward, which is bit-identical by the
// fast-forward contract — must not move the digest.
func TestDigestIgnoresNeutralFields(t *testing.T) {
	prog := goldenProgram(t)
	base := Spec{Config: sim.HighPerfConfig(), Program: prog, MaxCycles: 100000}
	want := base.Digest()

	mut := base
	mut.Config.Name = "renamed"
	mut.Config.NoFastForward = true
	mut.Config.Memory.L1I.Name = "icache"
	mut.Config.Memory.L1D.Name = "dcache"
	mut.Config.Memory.L2.Name = "llc"
	if got := mut.Digest(); got != want {
		t.Errorf("neutral-field mutation moved the digest: %s != %s", got, want)
	}

	// Implicit predictor defaults and their explicit spellings are the
	// same machine, so they must be the same digest.
	imp := base
	imp.Config.Predictor.Kind = ""
	imp.Config.Predictor.TableBits = 0
	imp.Config.Predictor.HistBits = 0
	exp := base
	exp.Config.Predictor.Kind = "gshare"
	exp.Config.Predictor.TableBits = 12
	exp.Config.Predictor.HistBits = 8
	if imp.Digest() != exp.Digest() {
		t.Error("implicit and explicit predictor defaults digest differently")
	}
}

// TestDigestSensitivity: every semantic field must move the digest.
func TestDigestSensitivity(t *testing.T) {
	prog := goldenProgram(t)
	base := Spec{Config: sim.HighPerfConfig(), Program: prog, MaxCycles: 100000}
	want := base.Digest()

	muts := map[string]func(*Spec){
		"rob-size":        func(s *Spec) { s.Config.ROBSize++ },
		"mode":            func(s *Spec) { s.Config.Mode = accel.NLNT },
		"partial-spec":    func(s *Spec) { s.Config.PartialSpeculation = true },
		"load-ordering":   func(s *Spec) { s.Config.ConservativeLoadOrdering = true },
		"predictor":       func(s *Spec) { s.Config.Predictor.Kind = "bimodal" },
		"l1d-size":        func(s *Spec) { s.Config.Memory.L1D.SizeBytes *= 2 },
		"dram-latency":    func(s *Spec) { s.Config.Memory.DRAM.Latency++ },
		"record-events":   func(s *Spec) { s.Config.RecordAccelEvents = true },
		"pipetrace-limit": func(s *Spec) { s.Config.PipeTraceLimit = 10 },
		"max-cycles":      func(s *Spec) { s.MaxCycles++ },
		"device":          func(s *Spec) { s.NewDevice = func() isa.AccelDevice { return nil }; s.DeviceKey = "k" },
	}
	for name, mutate := range muts {
		s := base
		mutate(&s)
		if s.Digest() == want {
			t.Errorf("%s: mutation did not move the digest", name)
		}
	}

	// Program identity: code and init words both count.
	b := isa.NewBuilder()
	b.Nop()
	b.Halt()
	other, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := base
	s.Program = other
	if s.Digest() == want {
		t.Error("program change did not move the digest")
	}

	// Device keys distinguish otherwise-identical specs.
	a, c := base, base
	a.NewDevice = func() isa.AccelDevice { return nil }
	c.NewDevice = a.NewDevice
	a.DeviceKey, c.DeviceKey = "fixed:lat=1", "fixed:lat=2"
	if a.Digest() == c.Digest() {
		t.Error("device key change did not move the digest")
	}
}

// TestDigestPanicsOnUncacheable: a device without a canonical key has
// no identity; hashing it anyway would risk cross-device sharing.
func TestDigestPanicsOnUncacheable(t *testing.T) {
	spec := Spec{
		Config:    sim.HighPerfConfig(),
		Program:   goldenProgram(t),
		NewDevice: func() isa.AccelDevice { return nil },
		MaxCycles: 1,
	}
	if spec.Cacheable() {
		t.Fatal("device without key should not be cacheable")
	}
	defer func() {
		if recover() == nil {
			t.Error("Digest on uncacheable spec did not panic")
		}
	}()
	spec.Digest()
}

// TestDescribe smoke-checks the -dump-scenario rendering: it must show
// the digest and the canonical (not the spelled) predictor.
func TestDescribe(t *testing.T) {
	spec := Spec{Config: sim.HighPerfConfig(), Program: goldenProgram(t), MaxCycles: 100000}
	var sb strings.Builder
	spec.Describe(&sb)
	out := sb.String()
	if !strings.Contains(out, spec.Digest().String()) {
		t.Errorf("Describe output missing digest:\n%s", out)
	}
	if !strings.Contains(out, "gshare") {
		t.Errorf("Describe output missing canonical predictor:\n%s", out)
	}

	spec.NewDevice = func() isa.AccelDevice { return nil }
	sb.Reset()
	spec.Describe(&sb)
	if !strings.Contains(sb.String(), "uncacheable") {
		t.Errorf("Describe of uncacheable spec should say so:\n%s", sb.String())
	}
}
