package scenario

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/sim"
)

// goldenProgram is a tiny fixed instruction stream with one init word —
// small enough that the golden digests below are cheap to regenerate,
// rich enough to exercise every encoded program field.
func goldenProgram(t testing.TB) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 5)
	b.MovI(isa.R(2), 7)
	b.Add(isa.R(3), isa.R(1), isa.R(2))
	b.MovI(isa.R(4), 0x1000)
	b.Load(isa.R(5), isa.R(4), 0)
	b.Add(isa.R(3), isa.R(3), isa.R(5))
	b.InitWord(0x1000, 42)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGoldenDigests pins the canonical encoding for the stock core
// configurations across all four TCA modes. A failure here means the
// encoding changed — field set, order, width, or canonicalization rule.
// That is only acceptable together with a SchemeVersion bump (so stale
// disk blobs miss instead of serving wrong bytes); bump it, then
// regenerate these constants from the failure output.
func TestGoldenDigests(t *testing.T) {
	golden := []struct {
		core string
		mode accel.Mode
		want string
	}{
		{"hp", accel.LT, "50a893eb1c7c21bf48c2261c62823768fef99bbd7a9e77e864bfb5b2b66cf357"},
		{"hp", accel.NLT, "6bea2a10037e29a4022baa4097100af5fcfdea45921f12938b1793d0df1e7786"},
		{"hp", accel.LNT, "d50b7f7ada54fd80fedc5852049576b21269ac59ce338b8a2d32bc969bcd97a0"},
		{"hp", accel.NLNT, "73c408c94121c99a0f501997893cb4acabc2c169ca771a777bac93958b2a981d"},
		{"lp", accel.LT, "edbaa0136519a2e320b4f36b6d9de0b098bacd6a4dab0c65a8801e2fa32c3f14"},
		{"lp", accel.NLT, "b5864a7cbbcd623cffba6dcfcccbf9dca4d9c8c8ba862e76b017b983dec2b173"},
		{"lp", accel.LNT, "1f2bb93c96f9a4d84ea97c1e7e576fa1d2801c6a9937dc9ac62062ebca194dea"},
		{"lp", accel.NLNT, "41deb0297dc76630019d153a314371c0b2a4155e344cd23b8415a5f5118136b3"},
	}
	prog := goldenProgram(t)
	for _, g := range golden {
		cfg := sim.HighPerfConfig()
		if g.core == "lp" {
			cfg = sim.LowPerfConfig()
		}
		cfg.Mode = g.mode
		spec := Spec{Config: cfg, Program: prog, MaxCycles: 100000}
		if got := spec.Digest().String(); got != g.want {
			t.Errorf("%s/%s: digest %s, want %s", g.core, g.mode, got, g.want)
		}
	}
}

// TestDigestIgnoresNeutralFields: fields erased by canonicalization —
// labels for humans, and NoFastForward, which is bit-identical by the
// fast-forward contract — must not move the digest.
func TestDigestIgnoresNeutralFields(t *testing.T) {
	prog := goldenProgram(t)
	base := Spec{Config: sim.HighPerfConfig(), Program: prog, MaxCycles: 100000}
	want := base.Digest()

	mut := base
	mut.Config.Name = "renamed"
	mut.Config.NoFastForward = true
	mut.Config.Memory.L1I.Name = "icache"
	mut.Config.Memory.L1D.Name = "dcache"
	mut.Config.Memory.L2.Name = "llc"
	if got := mut.Digest(); got != want {
		t.Errorf("neutral-field mutation moved the digest: %s != %s", got, want)
	}

	// Implicit predictor defaults and their explicit spellings are the
	// same machine, so they must be the same digest.
	imp := base
	imp.Config.Predictor.Kind = ""
	imp.Config.Predictor.TableBits = 0
	imp.Config.Predictor.HistBits = 0
	exp := base
	exp.Config.Predictor.Kind = "gshare"
	exp.Config.Predictor.TableBits = 12
	exp.Config.Predictor.HistBits = 8
	if imp.Digest() != exp.Digest() {
		t.Error("implicit and explicit predictor defaults digest differently")
	}
}

// TestDigestSensitivity: every semantic field must move the digest.
func TestDigestSensitivity(t *testing.T) {
	prog := goldenProgram(t)
	base := Spec{Config: sim.HighPerfConfig(), Program: prog, MaxCycles: 100000}
	want := base.Digest()

	muts := map[string]func(*Spec){
		"rob-size":        func(s *Spec) { s.Config.ROBSize++ },
		"mode":            func(s *Spec) { s.Config.Mode = accel.NLNT },
		"partial-spec":    func(s *Spec) { s.Config.PartialSpeculation = true },
		"load-ordering":   func(s *Spec) { s.Config.ConservativeLoadOrdering = true },
		"predictor":       func(s *Spec) { s.Config.Predictor.Kind = "bimodal" },
		"l1d-size":        func(s *Spec) { s.Config.Memory.L1D.SizeBytes *= 2 },
		"dram-latency":    func(s *Spec) { s.Config.Memory.DRAM.Latency++ },
		"record-events":   func(s *Spec) { s.Config.RecordAccelEvents = true },
		"pipetrace-limit": func(s *Spec) { s.Config.PipeTraceLimit = 10 },
		"max-cycles":      func(s *Spec) { s.MaxCycles++ },
		"device":          func(s *Spec) { s.NewDevice = func() isa.AccelDevice { return nil }; s.DeviceKey = "k" },
	}
	for name, mutate := range muts {
		s := base
		mutate(&s)
		if s.Digest() == want {
			t.Errorf("%s: mutation did not move the digest", name)
		}
	}

	// Program identity: code and init words both count.
	b := isa.NewBuilder()
	b.Nop()
	b.Halt()
	other, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := base
	s.Program = other
	if s.Digest() == want {
		t.Error("program change did not move the digest")
	}

	// Device keys distinguish otherwise-identical specs.
	a, c := base, base
	a.NewDevice = func() isa.AccelDevice { return nil }
	c.NewDevice = a.NewDevice
	a.DeviceKey, c.DeviceKey = "fixed:lat=1", "fixed:lat=2"
	if a.Digest() == c.Digest() {
		t.Error("device key change did not move the digest")
	}
}

// TestDigestPanicsOnUncacheable: a device without a canonical key has
// no identity; hashing it anyway would risk cross-device sharing.
func TestDigestPanicsOnUncacheable(t *testing.T) {
	spec := Spec{
		Config:    sim.HighPerfConfig(),
		Program:   goldenProgram(t),
		NewDevice: func() isa.AccelDevice { return nil },
		MaxCycles: 1,
	}
	if spec.Cacheable() {
		t.Fatal("device without key should not be cacheable")
	}
	defer func() {
		if recover() == nil {
			t.Error("Digest on uncacheable spec did not panic")
		}
	}()
	spec.Digest()
}

// TestDescribe smoke-checks the -dump-scenario rendering: it must show
// the digest and the canonical (not the spelled) predictor.
func TestDescribe(t *testing.T) {
	spec := Spec{Config: sim.HighPerfConfig(), Program: goldenProgram(t), MaxCycles: 100000}
	var sb strings.Builder
	spec.Describe(&sb)
	out := sb.String()
	if !strings.Contains(out, spec.Digest().String()) {
		t.Errorf("Describe output missing digest:\n%s", out)
	}
	if !strings.Contains(out, "gshare") {
		t.Errorf("Describe output missing canonical predictor:\n%s", out)
	}

	spec.NewDevice = func() isa.AccelDevice { return nil }
	sb.Reset()
	spec.Describe(&sb)
	if !strings.Contains(sb.String(), "uncacheable") {
		t.Errorf("Describe of uncacheable spec should say so:\n%s", sb.String())
	}
}
