package scenario

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/sim"
)

// goldenProgram is a tiny fixed instruction stream with one init word —
// small enough that the golden digests below are cheap to regenerate,
// rich enough to exercise every encoded program field.
func goldenProgram(t testing.TB) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 5)
	b.MovI(isa.R(2), 7)
	b.Add(isa.R(3), isa.R(1), isa.R(2))
	b.MovI(isa.R(4), 0x1000)
	b.Load(isa.R(5), isa.R(4), 0)
	b.Add(isa.R(3), isa.R(3), isa.R(5))
	b.InitWord(0x1000, 42)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGoldenDigests pins the canonical encoding for the stock core
// configurations across all four TCA modes. A failure here means the
// encoding changed — field set, order, width, or canonicalization rule.
// That is only acceptable together with a SchemeVersion bump (so stale
// disk blobs miss instead of serving wrong bytes); bump it, then
// regenerate these constants from the failure output.
func TestGoldenDigests(t *testing.T) {
	golden := []struct {
		core string
		mode accel.Mode
		want string
	}{
		{"hp", accel.LT, "74ae3a0be330ef6de713a50c137b4a3587352f2b9e8b41d0cb6646b0e5562e1d"},
		{"hp", accel.NLT, "f356f899ade4e7aa8f5cc4ccb37ef02bb6b2f0ba9ff14ca07dd5dc633be7af70"},
		{"hp", accel.LNT, "a0ce65f8ddfa8dd10fabe562d069c0d7317be3ab5132594412915376f33142f1"},
		{"hp", accel.NLNT, "b41c46f279fe15e79f91475e0e1277f9d772338a15087fc3d4e20bffcb1d2919"},
		{"lp", accel.LT, "fd6ef71bfc88e2e85763260b5e5948a36ff31d6db0799daa79a6541cf5eebe9b"},
		{"lp", accel.NLT, "f9ffc71b1db812b19be5bedb921cd671cd1a7db13aee66747e99d58255b2adb5"},
		{"lp", accel.LNT, "5431180476f0516920fb9b32a8e2e8e757d8af94c29f47943932f2b3122d1297"},
		{"lp", accel.NLNT, "851170fe7cd172dfbadcff8e78df898fb6b3f3f41a0a1335aaad32b264a82093"},
	}
	prog := goldenProgram(t)
	for _, g := range golden {
		cfg := sim.HighPerfConfig()
		if g.core == "lp" {
			cfg = sim.LowPerfConfig()
		}
		cfg.Mode = g.mode
		spec := Spec{Config: cfg, Program: prog, MaxCycles: 100000}
		if got := spec.Digest().String(); got != g.want {
			t.Errorf("%s/%s: digest %s, want %s", g.core, g.mode, got, g.want)
		}
	}
}

// TestDigestIgnoresNeutralFields: fields erased by canonicalization —
// labels for humans, and NoFastForward, which is bit-identical by the
// fast-forward contract — must not move the digest.
func TestDigestIgnoresNeutralFields(t *testing.T) {
	prog := goldenProgram(t)
	base := Spec{Config: sim.HighPerfConfig(), Program: prog, MaxCycles: 100000}
	want := base.Digest()

	mut := base
	mut.Config.Name = "renamed"
	mut.Config.NoFastForward = true
	mut.Config.Memory.L1I.Name = "icache"
	mut.Config.Memory.L1D.Name = "dcache"
	mut.Config.Memory.L2.Name = "llc"
	if got := mut.Digest(); got != want {
		t.Errorf("neutral-field mutation moved the digest: %s != %s", got, want)
	}

	// Implicit predictor defaults and their explicit spellings are the
	// same machine, so they must be the same digest.
	imp := base
	imp.Config.Predictor.Kind = ""
	imp.Config.Predictor.TableBits = 0
	imp.Config.Predictor.HistBits = 0
	exp := base
	exp.Config.Predictor.Kind = "gshare"
	exp.Config.Predictor.TableBits = 12
	exp.Config.Predictor.HistBits = 8
	if imp.Digest() != exp.Digest() {
		t.Error("implicit and explicit predictor defaults digest differently")
	}
}

// TestDigestSensitivity: every semantic field must move the digest.
func TestDigestSensitivity(t *testing.T) {
	prog := goldenProgram(t)
	base := Spec{Config: sim.HighPerfConfig(), Program: prog, MaxCycles: 100000}
	want := base.Digest()

	muts := map[string]func(*Spec){
		"rob-size":        func(s *Spec) { s.Config.ROBSize++ },
		"mode":            func(s *Spec) { s.Config.Mode = accel.NLNT },
		"partial-spec":    func(s *Spec) { s.Config.PartialSpeculation = true },
		"load-ordering":   func(s *Spec) { s.Config.ConservativeLoadOrdering = true },
		"predictor":       func(s *Spec) { s.Config.Predictor.Kind = "bimodal" },
		"l1d-size":        func(s *Spec) { s.Config.Memory.L1D.SizeBytes *= 2 },
		"dram-latency":    func(s *Spec) { s.Config.Memory.DRAM.Latency++ },
		"record-events":   func(s *Spec) { s.Config.RecordAccelEvents = true },
		"pipetrace-limit": func(s *Spec) { s.Config.PipeTraceLimit = 10 },
		"max-cycles":      func(s *Spec) { s.MaxCycles++ },
		"device":          func(s *Spec) { s.NewDevice = func() isa.AccelDevice { return nil }; s.DeviceKey = "k" },
	}
	for name, mutate := range muts {
		s := base
		mutate(&s)
		if s.Digest() == want {
			t.Errorf("%s: mutation did not move the digest", name)
		}
	}

	// Program identity: code and init words both count.
	b := isa.NewBuilder()
	b.Nop()
	b.Halt()
	other, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := base
	s.Program = other
	if s.Digest() == want {
		t.Error("program change did not move the digest")
	}

	// Device keys distinguish otherwise-identical specs.
	a, c := base, base
	a.NewDevice = func() isa.AccelDevice { return nil }
	c.NewDevice = a.NewDevice
	a.DeviceKey, c.DeviceKey = "fixed:lat=1", "fixed:lat=2"
	if a.Digest() == c.Digest() {
		t.Error("device key change did not move the digest")
	}
}

// TestDigestPanicsOnUncacheable: a device without a canonical key has
// no identity; hashing it anyway would risk cross-device sharing.
func TestDigestPanicsOnUncacheable(t *testing.T) {
	spec := Spec{
		Config:    sim.HighPerfConfig(),
		Program:   goldenProgram(t),
		NewDevice: func() isa.AccelDevice { return nil },
		MaxCycles: 1,
	}
	if spec.Cacheable() {
		t.Fatal("device without key should not be cacheable")
	}
	defer func() {
		if recover() == nil {
			t.Error("Digest on uncacheable spec did not panic")
		}
	}()
	spec.Digest()
}

// TestDescribe smoke-checks the -dump-scenario rendering: it must show
// the digest and the canonical (not the spelled) predictor.
func TestDescribe(t *testing.T) {
	spec := Spec{Config: sim.HighPerfConfig(), Program: goldenProgram(t), MaxCycles: 100000}
	var sb strings.Builder
	spec.Describe(&sb)
	out := sb.String()
	if !strings.Contains(out, spec.Digest().String()) {
		t.Errorf("Describe output missing digest:\n%s", out)
	}
	if !strings.Contains(out, "gshare") {
		t.Errorf("Describe output missing canonical predictor:\n%s", out)
	}

	spec.NewDevice = func() isa.AccelDevice { return nil }
	sb.Reset()
	spec.Describe(&sb)
	if !strings.Contains(sb.String(), "uncacheable") {
		t.Errorf("Describe of uncacheable spec should say so:\n%s", sb.String())
	}
}
