package scenario

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// exemptDigestFields are the sim.Config leaves that Canonical erases
// before encoding: presentation-only names and the bit-identical
// fast-forward toggle. Everything else must move the digest — this set
// mirrors the //lint:exempt-field R8 manifest and Config.Canonical.
var exemptDigestFields = map[string]bool{
	"Name":            true,
	"NoFastForward":   true,
	"Memory.L1I.Name": true,
	"Memory.L1D.Name": true,
	"Memory.L2.Name":  true,
}

// TestDigestDistinguishesEveryConfigField walks sim.Config by reflection
// and perturbs each settable leaf field in isolation, asserting the spec
// digest moves. This is the dynamic counterpart of simlint's R8: R8
// proves the encoder reads every field; this proves each read actually
// reaches the hash (catching, say, an encoder line writing a constant).
// A new Config field fails here until it is either encoded or erased in
// Canonical and added to both exemption lists.
func TestDigestDistinguishesEveryConfigField(t *testing.T) {
	prog := goldenProgram(t)
	base := Spec{Config: sim.HighPerfConfig(), Program: prog, MaxCycles: 100000}
	want := base.Digest()

	var leaves []string
	collectLeaves(reflect.TypeOf(sim.Config{}), "", &leaves)
	if len(leaves) < 30 {
		t.Fatalf("reflection walk found only %d leaf fields; walk is broken", len(leaves))
	}

	for _, path := range leaves {
		if exemptDigestFields[path] {
			mut := base
			perturb(t, fieldByPath(reflect.ValueOf(&mut.Config).Elem(), path), path)
			if got := mut.Digest(); got != want {
				t.Errorf("%s: exempt (Canonical-erased) field moved the digest", path)
			}
			continue
		}
		mut := base
		perturb(t, fieldByPath(reflect.ValueOf(&mut.Config).Elem(), path), path)
		if got := mut.Digest(); got == want {
			t.Errorf("%s: perturbing the field did not move the digest — "+
				"two configs differing only there would alias in the result cache", path)
		}
	}
}

// collectLeaves appends the dotted path of every exported scalar field
// reachable from t (descending through nested structs).
func collectLeaves(t reflect.Type, prefix string, out *[]string) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		if f.Type.Kind() == reflect.Struct {
			collectLeaves(f.Type, path, out)
			continue
		}
		*out = append(*out, path)
	}
}

func fieldByPath(v reflect.Value, path string) reflect.Value {
	for {
		dot := -1
		for i, c := range path {
			if c == '.' {
				dot = i
				break
			}
		}
		if dot < 0 {
			return v.FieldByName(path)
		}
		v = v.FieldByName(path[:dot])
		path = path[dot+1:]
	}
}

// perturb nudges a scalar field to a distinct value: +1 for integers,
// flip for bools, an appended rune for strings, +1.5 for floats. The
// deltas avoid landing on a value Canonical would normalize back onto
// the baseline (defaults kick in at zero, never at baseline+1).
func perturb(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
	default:
		t.Fatalf("%s: no perturbation for kind %s; extend perturb()", path, v.Kind())
	}
}
