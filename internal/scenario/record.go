package scenario

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
)

// ModeResult is one (workload, mode) comparison of the simulator
// against the analytical model.
type ModeResult struct {
	Mode         accel.Mode
	SimCycles    int64
	SimSpeedup   float64
	ModelSpeedup float64
	// Error is (model - sim) / sim.
	Error float64
}

// MeasureRecord is the cacheable outcome of one full measure-workload
// evaluation: the baseline measurement, the calibrated model
// parameters, and the per-mode comparison. Every field round-trips
// exactly through JSON (integers, finite float64s, and slices of
// same), so disk-cached records reproduce in-memory results
// byte-for-byte.
type MeasureRecord struct {
	BaselineCycles int64
	BaselineIPC    float64
	// MeasuredAccelLatency is the mean TCA service time observed in
	// the L_T run's event trace (used by the model when the workload
	// has no intrinsic latency).
	MeasuredAccelLatency float64

	Params core.Params
	Modes  []ModeResult
}

// Clone returns a deep copy, so cached records can be handed out
// without aliasing the store's canonical copy.
func (r MeasureRecord) Clone() MeasureRecord {
	out := r
	out.Modes = append([]ModeResult(nil), r.Modes...)
	return out
}

// MaxAbsError returns the largest |error| across modes.
func (r MeasureRecord) MaxAbsError() float64 {
	var worst float64
	for _, m := range r.Modes {
		e := m.Error
		if e < 0 {
			e = -e
		}
		if e > worst {
			worst = e
		}
	}
	return worst
}

// Mode returns the measurement for one mode.
func (r MeasureRecord) Mode(m accel.Mode) ModeResult {
	for _, mm := range r.Modes {
		if mm.Mode == m {
			return mm
		}
	}
	panic(fmt.Sprintf("scenario: mode %v not measured", m))
}
