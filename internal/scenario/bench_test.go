package scenario

import (
	"testing"
)

// The cached-vs-uncached pair: BenchmarkRunStatsUncached is the cost of
// one full simulation; BenchmarkRunStatsWarm is the cost of serving the
// same spec from the in-memory store (digest + map lookup + stats
// clone); BenchmarkRunStatsWarmDisk adds a fresh store per iteration so
// every request pays the blob read. BENCH_PR4.json tracks the spread.

func BenchmarkRunStatsUncached(b *testing.B) {
	spec := baselineSpec(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s *Store
		if _, err := s.RunStats(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunStatsWarm(b *testing.B) {
	s := newTestStore(b, "")
	spec := baselineSpec(b)
	if _, err := s.RunStats(spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunStats(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunStatsWarmDisk(b *testing.B) {
	dir := b.TempDir()
	seed := newTestStore(b, dir)
	spec := baselineSpec(b)
	if _, err := seed.RunStats(spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newTestStore(b, dir)
		if _, err := s.RunStats(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDigest(b *testing.B) {
	spec := baselineSpec(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = spec.Digest()
	}
}
