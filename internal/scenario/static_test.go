package scenario

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/accel"
	"repro/internal/sim"
	"repro/internal/staticmodel"
)

func staticTestSpec(t testing.TB) MeasureSpec {
	t.Helper()
	return MeasureSpec{Config: sim.HighPerfConfig(), Workload: testWorkload(t), MaxCycles: 1 << 30}
}

func staticTestPrediction() *staticmodel.Prediction {
	return &staticmodel.Prediction{
		BaselineCycles: 1000,
		Modes: []staticmodel.ModePrediction{
			{Mode: accel.LT, Speedup: 2, PredictedCycles: 500},
			{Mode: accel.NLNT, Speedup: 1.1, PredictedCycles: 909},
		},
	}
}

// TestStaticPredictionNilStore: the nil store computes directly, every
// call, with zero metrics — the no-cache mode.
func TestStaticPredictionNilStore(t *testing.T) {
	var s *Store
	spec := staticTestSpec(t)
	calls := 0
	for i := 0; i < 2; i++ {
		got, err := s.StaticPrediction(spec, func() (*staticmodel.Prediction, error) {
			calls++
			return staticTestPrediction(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Mode(accel.LT).Speedup != 2 {
			t.Errorf("call %d: wrong prediction returned", i)
		}
	}
	if calls != 2 {
		t.Errorf("nil store: compute called %d times, want 2", calls)
	}
}

// TestStaticPredictionCache: a repeated spec computes once; the second
// call is a hit; distinct specs do not collide.
func TestStaticPredictionCache(t *testing.T) {
	s := newTestStore(t, "")
	spec := staticTestSpec(t)
	calls := 0
	compute := func() (*staticmodel.Prediction, error) {
		calls++
		return staticTestPrediction(), nil
	}
	first, err := s.StaticPrediction(spec, compute)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.StaticPrediction(spec, compute)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("compute called %d times, want 1", calls)
	}
	if first.String() != second.String() {
		t.Error("cached prediction differs from first computation")
	}

	other := spec
	other.MaxCycles = 1 << 29 // digest-relevant field -> separate entry
	if _, err := s.StaticPrediction(other, compute); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("distinct spec: compute called %d times total, want 2", calls)
	}
	m := s.Metrics()
	if m.StaticMisses != 2 || m.StaticHits != 1 || m.StaticUncacheable != 0 {
		t.Errorf("metrics %+v, want 2 static misses / 1 hit / 0 uncacheable", m)
	}
}

// TestStaticPredictionReturnsClones: callers must be able to mutate the
// returned prediction without corrupting later hits.
func TestStaticPredictionReturnsClones(t *testing.T) {
	s := newTestStore(t, "")
	spec := staticTestSpec(t)
	compute := func() (*staticmodel.Prediction, error) { return staticTestPrediction(), nil }
	first, err := s.StaticPrediction(spec, compute)
	if err != nil {
		t.Fatal(err)
	}
	first.Modes[0].Speedup = -5
	first.BaselineCycles = 0
	second, err := s.StaticPrediction(spec, compute)
	if err != nil {
		t.Fatal(err)
	}
	if second.Mode(accel.LT).Speedup != 2 || second.BaselineCycles != 1000 {
		t.Error("mutating a returned prediction corrupted the cache")
	}
}

// TestStaticPredictionSingleflight: concurrent callers of the same spec
// share one computation.
func TestStaticPredictionSingleflight(t *testing.T) {
	s := newTestStore(t, "")
	spec := staticTestSpec(t)
	var mu sync.Mutex
	calls := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.StaticPrediction(spec, func() (*staticmodel.Prediction, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return staticTestPrediction(), nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("compute called %d times under concurrency, want 1", calls)
	}
	m := s.Metrics()
	if m.StaticMisses != 1 || m.StaticHits != 7 {
		t.Errorf("metrics %+v, want 1 static miss / 7 hits", m)
	}
}

// TestStaticPredictionError: errors are cached like results (the spec
// is content-addressed; recomputing cannot succeed) and nil predictions
// stay nil through Clone.
func TestStaticPredictionError(t *testing.T) {
	s := newTestStore(t, "")
	spec := staticTestSpec(t)
	wantErr := errors.New("profile rejected")
	calls := 0
	compute := func() (*staticmodel.Prediction, error) {
		calls++
		return nil, wantErr
	}
	for i := 0; i < 2; i++ {
		pred, err := s.StaticPrediction(spec, compute)
		if !errors.Is(err, wantErr) {
			t.Fatalf("call %d: err = %v, want %v", i, err, wantErr)
		}
		if pred != nil {
			t.Fatalf("call %d: prediction = %v, want nil", i, pred)
		}
	}
	if calls != 1 {
		t.Errorf("failing compute called %d times, want 1 (errors are cached)", calls)
	}
}

// TestStaticPredictionUncacheable: specs without a content address fall
// through to direct computation and are counted.
func TestStaticPredictionUncacheable(t *testing.T) {
	s := newTestStore(t, "")
	spec := staticTestSpec(t)
	spec.Workload = nil // no workload -> no digestable identity
	if spec.Cacheable() {
		t.Skip("spec unexpectedly cacheable; adjust the fixture")
	}
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := s.StaticPrediction(spec, func() (*staticmodel.Prediction, error) {
			calls++
			return staticTestPrediction(), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Errorf("uncacheable compute called %d times, want 2", calls)
	}
	if m := s.Metrics(); m.StaticUncacheable != 2 {
		t.Errorf("metrics %+v, want 2 static uncacheable", m)
	}
}
