package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"sync"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Digest is the SHA-256 content address of a canonical encoding.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short renders the first 12 hex digits, for logs.
func (d Digest) Short() string { return hex.EncodeToString(d[:6]) }

// encoder streams the canonical binary encoding into a hash. Every
// field is written fixed-width little-endian in declared order;
// variable-length data (strings, slices) is length-prefixed so
// adjacent fields cannot alias. Any change to what is written — order,
// width, field set — must bump SchemeVersion.
type encoder struct {
	h   hash.Hash
	buf [8]byte
}

func newEncoder(kind string) *encoder {
	e := &encoder{h: sha256.New()}
	e.str("tca-scenario")
	e.u64(SchemeVersion)
	e.str(kind)
	return e
}

func (e *encoder) sum() Digest {
	var d Digest
	e.h.Sum(d[:0])
	return d
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:], v)
	e.h.Write(e.buf[:])
}

func (e *encoder) i64(v int64) { e.u64(uint64(v)) }
func (e *encoder) int(v int)   { e.i64(int64(v)) }

func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) bool(b bool) {
	if b {
		e.u64(1)
	} else {
		e.u64(0)
	}
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	io.WriteString(e.h, s)
}

// config writes the canonical form of a simulator configuration.
func (e *encoder) config(cfg sim.Config) {
	c := cfg.Canonical()
	e.int(c.FetchWidth)
	e.int(c.DispatchWidth)
	e.int(c.IssueWidth)
	e.int(c.CommitWidth)
	e.int(c.ROBSize)
	e.int(c.IQSize)
	e.int(c.LSQSize)
	e.int(c.FrontEndDepth)
	e.int(c.CommitDelay)
	e.int(c.IntALUs)
	e.int(c.IntMuls)
	e.int(c.FPUs)
	e.int(c.MemPorts)
	e.int(c.IntMulLatency)
	e.int(c.IntDivLatency)
	e.int(c.FPAddLatency)
	e.int(c.FPMulLatency)
	e.int(c.FMALatency)
	e.int(c.FPDivLatency)
	e.u64(uint64(c.Mode))
	e.bool(c.PartialSpeculation)
	e.bool(c.ConservativeLoadOrdering)
	e.str(c.Predictor.Kind)
	e.int(c.Predictor.TableBits)
	e.int(c.Predictor.HistBits)
	e.cache(c.Memory.L1I)
	e.cache(c.Memory.L1D)
	e.cache(c.Memory.L2)
	e.int(c.Memory.DRAM.Latency)
	e.int(c.Memory.DRAM.CyclesPerLine)
	e.tlb(c.Memory.DTLB)
	e.tlb(c.Memory.ITLB)
	e.bool(c.RecordAccelEvents)
	e.int(c.PipeTraceLimit)
}

func (e *encoder) cache(c mem.CacheConfig) {
	e.int(c.SizeBytes)
	e.int(c.Ways)
	e.int(c.LineBytes)
	e.int(c.HitLatency)
	e.int(c.MSHRs)
	e.bool(c.NextLinePrefetch)
}

func (e *encoder) tlb(c mem.TLBConfig) {
	e.int(c.Entries)
	e.int(c.PageBits)
	e.int(c.WalkLatency)
}

// progDigests memoizes program-section digests by pointer. A built
// *isa.Program is immutable (the Builder returns a fresh value and
// nothing downstream writes through it), so the pointer stands for the
// content for the life of the process; structurally equal programs at
// different addresses just hash the same content twice. Memoization
// therefore changes digest cost, never digest value.
var progDigests sync.Map // *isa.Program -> Digest

// programRef writes the program's own content address in place of its
// full encoding, computing that sub-digest once per distinct program.
// Sweeps re-digest the same multi-megabyte instruction stream once per
// variant otherwise — with warm-checkpoint forking eliminating the
// re-simulation, the repeated SHA-256 of the shared program was the
// next thing dominating forked sweeps.
func (e *encoder) programRef(p *isa.Program) {
	if d, ok := progDigests.Load(p); ok {
		e.digest(d.(Digest))
		return
	}
	sub := newEncoder("program")
	sub.program(p)
	d := sub.sum()
	progDigests.Store(p, d)
	e.digest(d)
}

// digest writes a nested content address, length-prefixed like every
// other variable-width field.
func (e *encoder) digest(d Digest) {
	e.u64(uint64(len(d)))
	e.h.Write(d[:])
}

// program writes the instruction stream and initial memory image.
// Labels are diagnostics only and excluded.
func (e *encoder) program(p *isa.Program) {
	e.u64(uint64(len(p.Code)))
	for _, in := range p.Code {
		e.u64(uint64(in.Op))
		e.u64(uint64(in.Dst))
		e.u64(uint64(in.Src1))
		e.u64(uint64(in.Src2))
		e.u64(uint64(in.Src3))
		e.i64(in.Imm)
	}
	e.u64(uint64(len(p.Init)))
	for _, mi := range p.Init {
		e.u64(mi.Addr)
		e.u64(mi.Data)
	}
}

// Digest returns the spec's content address. Panics on uncacheable
// specs — callers gate on Cacheable() first.
func (sp Spec) Digest() Digest {
	if !sp.Cacheable() {
		panic("scenario: Digest on uncacheable spec (device without DeviceKey)")
	}
	e := newEncoder("run")
	e.config(sp.Config)
	e.programRef(sp.Program)
	e.bool(sp.NewDevice != nil)
	e.str(sp.DeviceKey)
	e.i64(sp.MaxCycles)
	return e.sum()
}

// Digest returns the measure spec's content address. Panics on
// uncacheable specs — callers gate on Cacheable() first.
func (ms MeasureSpec) Digest() Digest {
	if !ms.Cacheable() {
		panic("scenario: Digest on uncacheable measure spec (device without DeviceKey)")
	}
	w := ms.Workload
	e := newEncoder("measure")
	e.config(ms.Config)
	e.programRef(w.Baseline)
	e.programRef(w.Accelerated)
	e.u64(w.Acceleratable)
	e.u64(w.Invocations)
	e.u64(w.BaselineInstructions)
	e.f64(w.AccelLatency)
	e.bool(w.NewDevice != nil)
	e.str(w.DeviceKey)
	e.i64(ms.MaxCycles)
	return e.sum()
}

// Describe writes the human-readable canonical form — every field that
// participates in the digest, in encoding order — followed by the
// digest itself. cmd/tcasim's -dump-scenario flag prints this.
func (sp Spec) Describe(w io.Writer) {
	c := sp.Config.Canonical()
	fmt.Fprintf(w, "scheme:      tca-scenario v%d\n", SchemeVersion)
	fmt.Fprintf(w, "widths:      fetch=%d dispatch=%d issue=%d commit=%d\n",
		c.FetchWidth, c.DispatchWidth, c.IssueWidth, c.CommitWidth)
	fmt.Fprintf(w, "windows:     rob=%d iq=%d lsq=%d frontend=%d commit-delay=%d\n",
		c.ROBSize, c.IQSize, c.LSQSize, c.FrontEndDepth, c.CommitDelay)
	fmt.Fprintf(w, "units:       alu=%d mul=%d fpu=%d memports=%d\n",
		c.IntALUs, c.IntMuls, c.FPUs, c.MemPorts)
	fmt.Fprintf(w, "latencies:   imul=%d idiv=%d fadd=%d fmul=%d fma=%d fdiv=%d\n",
		c.IntMulLatency, c.IntDivLatency, c.FPAddLatency, c.FPMulLatency,
		c.FMALatency, c.FPDivLatency)
	fmt.Fprintf(w, "mode:        %s (partial-spec=%v conservative-loads=%v)\n",
		c.Mode, c.PartialSpeculation, c.ConservativeLoadOrdering)
	fmt.Fprintf(w, "predictor:   %s table=%d hist=%d\n",
		c.Predictor.Kind, c.Predictor.TableBits, c.Predictor.HistBits)
	cc := func(name string, cfg mem.CacheConfig) {
		fmt.Fprintf(w, "%-12s %dB %d-way %dB-line hit=%d mshrs=%d prefetch=%v\n",
			name+":", cfg.SizeBytes, cfg.Ways, cfg.LineBytes, cfg.HitLatency,
			cfg.MSHRs, cfg.NextLinePrefetch)
	}
	cc("l1i", c.Memory.L1I)
	cc("l1d", c.Memory.L1D)
	cc("l2", c.Memory.L2)
	fmt.Fprintf(w, "dram:        latency=%d cycles/line=%d\n",
		c.Memory.DRAM.Latency, c.Memory.DRAM.CyclesPerLine)
	fmt.Fprintf(w, "dtlb:        entries=%d pagebits=%d walk=%d\n",
		c.Memory.DTLB.Entries, c.Memory.DTLB.PageBits, c.Memory.DTLB.WalkLatency)
	fmt.Fprintf(w, "itlb:        entries=%d pagebits=%d walk=%d\n",
		c.Memory.ITLB.Entries, c.Memory.ITLB.PageBits, c.Memory.ITLB.WalkLatency)
	fmt.Fprintf(w, "observe:     accel-events=%v pipetrace=%d\n",
		c.RecordAccelEvents, c.PipeTraceLimit)
	fmt.Fprintf(w, "program:     %d instructions, %d init words\n",
		len(sp.Program.Code), len(sp.Program.Init))
	if sp.NewDevice == nil {
		fmt.Fprintf(w, "device:      none\n")
	} else if sp.DeviceKey == "" {
		fmt.Fprintf(w, "device:      <no key: uncacheable>\n")
	} else {
		fmt.Fprintf(w, "device:      %s\n", sp.DeviceKey)
	}
	fmt.Fprintf(w, "max-cycles:  %d\n", sp.MaxCycles)
	if sp.Cacheable() {
		fmt.Fprintf(w, "digest:      %s\n", sp.Digest())
	} else {
		fmt.Fprintf(w, "digest:      <uncacheable>\n")
	}
}
