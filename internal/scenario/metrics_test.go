package scenario

import (
	"reflect"
	"testing"
)

// TestMetricsSubExhaustive pins Sub's field coverage by reflection:
// every counter in Metrics must appear in the difference. A field added
// to Metrics but forgotten in Sub would silently report zero activity
// for that counter in every phase delta, which is exactly the kind of
// quiet drop the phase reports exist to prevent.
func TestMetricsSubExhaustive(t *testing.T) {
	var m, prev Metrics
	mv := reflect.ValueOf(&m).Elem()
	pv := reflect.ValueOf(&prev).Elem()
	for i := 0; i < mv.NumField(); i++ {
		if mv.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("Metrics.%s is %s; this test assumes int64 counters",
				mv.Type().Field(i).Name, mv.Field(i).Kind())
		}
		// Distinct per-field values so a swapped subtraction (field A
		// reported under field B) cannot cancel out.
		mv.Field(i).SetInt(int64(100 + 10*i))
		pv.Field(i).SetInt(int64(1 + i))
	}
	d := m.Sub(prev)
	dv := reflect.ValueOf(d)
	for i := 0; i < dv.NumField(); i++ {
		want := int64(100+10*i) - int64(1+i)
		if got := dv.Field(i).Int(); got != want {
			t.Errorf("Sub dropped or misrouted Metrics.%s: got %d, want %d",
				dv.Type().Field(i).Name, got, want)
		}
	}
}

// TestMetricsSubUnderflow: counters are signed, so a "later" sample
// with smaller counters (two snapshots accidentally swapped, or taken
// from different stores) yields negative deltas rather than wrapping to
// huge positive ones — negative phase activity is visibly wrong where a
// wrapped uint64 would masquerade as a busy phase.
func TestMetricsSubUnderflow(t *testing.T) {
	before := Metrics{RunHits: 7, BytesWritten: 4096}
	after := Metrics{RunHits: 2, BytesWritten: 1024}
	d := after.Sub(before)
	if d.RunHits != -5 || d.BytesWritten != -3072 {
		t.Errorf("swapped snapshots: delta %+v, want RunHits=-5 BytesWritten=-3072", d)
	}
}

// TestMetricsSubLevelIsolation: run-level and measure-level counters
// must not cross-contaminate in a delta — a phase that was served
// entirely at measure level shows zero run activity, not run activity
// borrowed from the other level's counters.
func TestMetricsSubLevelIsolation(t *testing.T) {
	before := Metrics{RunHits: 3, RunMisses: 1}
	after := Metrics{RunHits: 3, RunMisses: 1, MeasureHits: 5, MeasureDiskHits: 2}
	d := after.Sub(before)
	if d.RunHits != 0 || d.RunMisses != 0 {
		t.Errorf("measure-level phase leaked into run counters: %+v", d)
	}
	if d.MeasureHits != 5 || d.MeasureDiskHits != 2 {
		t.Errorf("measure delta wrong: %+v", d)
	}
	if got := d.DedupRatio(); got != 1 {
		t.Errorf("all-hit delta DedupRatio = %v, want 1", got)
	}
}
