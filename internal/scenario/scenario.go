// Package scenario gives every simulation run a canonical, validated
// description and a stable content address.
//
// A Spec names one simulator execution — core configuration, program,
// accelerator device, and run limit — in a form that is independent of
// how the run was reached (which sweep, which flag spelling, which
// worker). Two Specs with equal digests are guaranteed to produce
// bit-identical sim.Stats, so the digest can key a result cache shared
// by every experiment driver: the Store layered on top deduplicates
// identical runs within a figure sweep, across figures, and (with a
// disk directory) across processes.
//
// Canonicalization is deliberately one-directional: fields that cannot
// change simulated-machine results are erased before hashing
// (Config.Name, cache Names, NoFastForward — bit-identical by the
// fast-forward contract), and implicit defaults are made explicit
// (the predictor's zero values), so digest-equal always implies
// semantics-equal. The converse does not hold and does not need to:
// a missed dedup opportunity costs time, a wrong hit would corrupt
// results. For the same reason a Spec whose device lacks a canonical
// DeviceKey is simply uncacheable — it executes directly every time.
package scenario

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SchemeVersion salts every digest. Bump it whenever the canonical
// encoding, the canonicalization rules, or the cached payload layout
// change in any way: old disk blobs then read as misses instead of
// serving stale bytes. The golden digest tests pin the current scheme.
//
// v3: the device-engine refactor — checkpoint codec v2 (new stats frame
// fields) and the first engine device families (DAE, loop nest) changed the
// cached payload layout.
const SchemeVersion = 3

// Spec canonically describes one simulator run.
type Spec struct {
	// Config is the core configuration. Semantically-neutral fields
	// (Name, NoFastForward, cache Names) are ignored for identity;
	// everything else — including RecordAccelEvents and PipeTraceLimit,
	// which change the Stats payload — participates in the digest.
	Config sim.Config
	// Program is the instruction stream and initial memory image.
	// Labels are diagnostic and excluded from identity.
	Program *isa.Program
	// NewDevice constructs the accelerator device, nil for none. The
	// closure itself cannot be hashed; DeviceKey stands in for it.
	NewDevice func() isa.AccelDevice
	// DeviceKey canonically describes the device: equal keys must mean
	// behaviorally identical devices. Empty with a non-nil NewDevice
	// marks the spec uncacheable.
	DeviceKey string
	// MaxCycles bounds the run.
	MaxCycles int64
}

// Validate reports spec errors.
func (sp Spec) Validate() error {
	switch {
	case sp.Program == nil:
		return fmt.Errorf("scenario: nil program")
	case len(sp.Program.Code) == 0:
		return fmt.Errorf("scenario: empty program")
	case sp.MaxCycles <= 0:
		return fmt.Errorf("scenario: max cycles %d must be positive", sp.MaxCycles)
	}
	return sp.Config.Validate()
}

// Cacheable reports whether the spec has a complete canonical identity.
// Device-bearing specs without a DeviceKey execute directly: the store
// never risks sharing results between unidentified devices.
func (sp Spec) Cacheable() bool {
	return sp.NewDevice == nil || sp.DeviceKey != ""
}

// run executes the spec directly, bypassing any cache.
func (sp Spec) run() (sim.Stats, error) {
	var dev isa.AccelDevice
	if sp.NewDevice != nil {
		dev = sp.NewDevice()
	}
	c, err := sim.New(sp.Config, sp.Program, dev)
	if err != nil {
		return sim.Stats{}, err
	}
	res, err := c.Run(sp.MaxCycles)
	if err != nil {
		return sim.Stats{}, err
	}
	return res.Stats, nil
}

// MeasureSpec canonically describes one full measure-workload
// evaluation: baseline plus all four accelerated modes on one core
// configuration, reduced to a MeasureRecord. Its digest covers both
// programs, the region bookkeeping the model calibrates from, and the
// device identity.
type MeasureSpec struct {
	Config    sim.Config
	Workload  *workload.Workload
	MaxCycles int64
}

// Validate reports spec errors.
func (ms MeasureSpec) Validate() error {
	if ms.Workload == nil {
		return fmt.Errorf("scenario: nil workload")
	}
	if ms.MaxCycles <= 0 {
		return fmt.Errorf("scenario: max cycles %d must be positive", ms.MaxCycles)
	}
	if err := ms.Workload.Validate(); err != nil {
		return err
	}
	return ms.Config.Validate()
}

// Cacheable reports whether the measure spec has a complete canonical
// identity (see Spec.Cacheable).
func (ms MeasureSpec) Cacheable() bool {
	w := ms.Workload
	return w != nil && (w.NewDevice == nil || w.DeviceKey != "")
}
