package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestShardedBlobLayout: new blobs land under the two-hex-digit shard
// directory, not flat in the cache root.
func TestShardedBlobLayout(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir)
	spec := baselineSpec(t)
	if _, err := s.RunStats(spec); err != nil {
		t.Fatal(err)
	}
	h := spec.Digest().String()
	sharded := filepath.Join(dir, h[:2], "run-"+h+".json")
	if _, err := os.Stat(sharded); err != nil {
		t.Fatalf("sharded blob missing: %v", err)
	}
	flat := filepath.Join(dir, "run-"+h+".json")
	if _, err := os.Stat(flat); !os.IsNotExist(err) {
		t.Fatalf("flat-layout blob written alongside sharded one: %v", err)
	}
}

// TestLegacyFlatBlobReadThrough is the migration test: a cache
// directory written by a pre-shard revision (blobs flat in the root)
// keeps serving disk hits after the layout upgrade — no invalidation,
// no re-simulation.
func TestLegacyFlatBlobReadThrough(t *testing.T) {
	dir := t.TempDir()
	writer := newTestStore(t, dir)
	spec := baselineSpec(t)
	want, err := writer.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Demote the blob to the legacy flat location, emptying the shard —
	// the directory now looks exactly like a pre-shard cache.
	h := spec.Digest().String()
	sharded := filepath.Join(dir, h[:2], "run-"+h+".json")
	flat := filepath.Join(dir, "run-"+h+".json")
	if err := os.Rename(sharded, flat); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, h[:2])); err != nil {
		t.Fatal(err)
	}

	reader := newTestStore(t, dir)
	got, err := reader.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("legacy-layout disk hit returned different stats")
	}
	m := reader.Metrics()
	if m.RunDiskHits != 1 || m.RunMisses != 0 {
		t.Errorf("metrics %+v: want 1 disk hit, 0 misses", m)
	}
}

// TestShardedAndLegacyPreferSharded: when both locations exist, the
// sharded blob wins (it is the one current revisions write and
// refresh).
func TestShardedAndLegacyPreferSharded(t *testing.T) {
	dir := t.TempDir()
	writer := newTestStore(t, dir)
	spec := baselineSpec(t)
	if _, err := writer.RunStats(spec); err != nil {
		t.Fatal(err)
	}
	h := spec.Digest().String()
	sharded := filepath.Join(dir, h[:2], "run-"+h+".json")
	flat := filepath.Join(dir, "run-"+h+".json")
	// Plant a corrupt legacy blob; only the legacy path would fail.
	if err := os.WriteFile(flat, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sharded); err != nil {
		t.Fatal(err)
	}
	reader := newTestStore(t, dir)
	if _, err := reader.RunStats(spec); err != nil {
		t.Fatal(err)
	}
	if m := reader.Metrics(); m.RunDiskHits != 1 {
		t.Errorf("metrics %+v: want the sharded blob to serve the disk hit", m)
	}
}

// TestCoalescedCounterClassification pins the hit/coalesced split
// deterministically: a request that joins an in-flight execution is
// coalesced; a request arriving after completion is a memory hit.
func TestCoalescedCounterClassification(t *testing.T) {
	s := newTestStore(t, "")
	spec := accelSpec(t)

	// Two concurrent requests for one spec: whichever the scheduler
	// favors executes (the miss); the other is served without executing
	// — coalesced if it joined mid-flight, a memory hit if it arrived
	// after. The split is scheduling-dependent, the sum is not.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.RunStats(spec); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	m := s.Metrics()
	if m.RunMisses != 1 {
		t.Fatalf("misses %d, want 1", m.RunMisses)
	}
	if m.RunHits+m.RunCoalesced != 1 {
		t.Fatalf("hits %d + coalesced %d, want exactly 1 duplicate served", m.RunHits, m.RunCoalesced)
	}

	// A third request after everything settled is unambiguous: memory
	// hit, never coalesced.
	before := s.Metrics()
	if _, err := s.RunStats(spec); err != nil {
		t.Fatal(err)
	}
	d := s.Metrics().Sub(before)
	if d.RunHits != 1 || d.RunCoalesced != 0 || d.RunMisses != 0 {
		t.Errorf("settled duplicate: delta %+v, want one memory hit", d)
	}
}

// TestMetricsSub: phase deltas subtract counter-wise.
func TestMetricsSub(t *testing.T) {
	a := Metrics{RunHits: 5, RunMisses: 2, CkptForks: 3, BytesWritten: 100}
	b := Metrics{RunHits: 9, RunMisses: 2, CkptForks: 4, BytesWritten: 250}
	d := b.Sub(a)
	if d.RunHits != 4 || d.RunMisses != 0 || d.CkptForks != 1 || d.BytesWritten != 150 {
		t.Errorf("Sub: %+v", d)
	}
}
