package scenario

import (
	"sync"
	"sync/atomic"

	"repro/internal/staticmodel"
)

// staticEntry singleflights one static-model prediction.
type staticEntry struct {
	once sync.Once
	done atomic.Bool
	pred *staticmodel.Prediction
	err  error
}

// StaticPrediction returns the cached static-model prediction for the
// measure spec — the same content address that keys the spec's full
// measurement, in a separate namespace — computing it once via compute.
//
// The static level is memory-only by design: recomputing a prediction
// costs microseconds, less than a disk round-trip, so persistence would
// be pure overhead. What the cache buys is in-process deduplication
// (sweeps sharing points, the prune pre-pass followed by the staticerr
// table) and singleflight under concurrency.
func (s *Store) StaticPrediction(spec MeasureSpec, compute func() (*staticmodel.Prediction, error)) (*staticmodel.Prediction, error) {
	if s == nil {
		return compute()
	}
	if !spec.Cacheable() {
		s.staticUncacheable.Add(1)
		return compute()
	}
	d := spec.Digest()
	s.mu.Lock()
	if s.statics == nil {
		s.statics = make(map[Digest]*staticEntry)
	}
	e, ok := s.statics[d]
	if !ok {
		e = &staticEntry{}
		s.statics[d] = e
	}
	s.mu.Unlock()

	joined := ok && !e.done.Load()
	ran := false
	e.once.Do(func() {
		ran = true
		s.staticMisses.Add(1)
		e.pred, e.err = compute()
	})
	e.done.Store(true)
	if !ran {
		if joined {
			s.staticCoalesced.Add(1)
		} else {
			s.staticHits.Add(1)
		}
	}
	return e.pred.Clone(), e.err
}
