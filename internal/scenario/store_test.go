package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// testWorkload builds a small synthetic workload: a device-bearing
// accelerated program with a canonical device key, cheap enough for
// many runs per test.
func testWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Units: 8, UnitLen: 12, Regions: 4, RegionLen: 30,
		AccelLatency: 12, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func baselineSpec(t testing.TB) Spec {
	return Spec{Config: sim.HighPerfConfig(), Program: testWorkload(t).Baseline, MaxCycles: 1 << 30}
}

func accelSpec(t testing.TB) Spec {
	w := testWorkload(t)
	return Spec{
		Config:    sim.HighPerfConfig(),
		Program:   w.Accelerated,
		NewDevice: w.NewDevice,
		DeviceKey: w.DeviceKey,
		MaxCycles: 1 << 30,
	}
}

func newTestStore(t testing.TB, dir string) *Store {
	t.Helper()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestNilStoreExecutesDirectly: a nil store is the no-cache mode every
// pre-store call path compiles down to.
func TestNilStoreExecutesDirectly(t *testing.T) {
	var s *Store
	spec := baselineSpec(t)
	direct, err := spec.run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cloneStats(direct)) {
		t.Error("nil store run differs from direct execution")
	}
	calls := 0
	if _, err := s.Measure(MeasureSpec{}, func() (MeasureRecord, error) {
		calls++
		return MeasureRecord{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("nil store Measure: compute called %d times, want 1", calls)
	}
	if m := s.Metrics(); m != (Metrics{}) {
		t.Errorf("nil store metrics should be zero, got %+v", m)
	}
}

// TestRunStatsMemoryCache: a repeated spec is served from memory with
// identical stats, and the counters say so.
func TestRunStatsMemoryCache(t *testing.T) {
	s := newTestStore(t, "")
	spec := accelSpec(t)
	first, err := s.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached stats differ from first execution")
	}
	m := s.Metrics()
	if m.RunMisses != 1 || m.RunHits != 1 || m.RunDiskHits != 0 {
		t.Errorf("metrics: %+v, want 1 miss / 1 hit / 0 disk", m)
	}
	if m.DedupRatio() != 0.5 {
		t.Errorf("dedup ratio %.2f, want 0.50", m.DedupRatio())
	}
}

// TestRunStatsReturnsPrivateCopies: mutating a returned Stats must not
// leak into later cache hits.
func TestRunStatsReturnsPrivateCopies(t *testing.T) {
	s := newTestStore(t, "")
	spec := accelSpec(t)
	spec.Config.RecordAccelEvents = true // populate the AccelEvents slice
	first, err := s.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.AccelEvents) == 0 {
		t.Fatal("expected recorded accel events")
	}
	first.Cycles = -1
	first.AccelEvents[0].Start = -1
	second, err := s.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cycles == -1 || second.AccelEvents[0].Start == -1 {
		t.Error("cache entry aliased by a caller's mutation")
	}
}

// TestRunStatsSingleflight: the same spec requested from many
// goroutines executes exactly once; distinct specs do not serialize
// each other. Run under -race this is also the store's data-race test.
func TestRunStatsSingleflight(t *testing.T) {
	s := newTestStore(t, "")
	same := accelSpec(t)
	const n = 16
	results := make([]sim.Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the goroutines ask for the shared spec, half for a
			// private variant (distinct MaxCycles → distinct digest).
			spec := same
			if i%2 == 1 {
				spec.MaxCycles += int64(i)
			}
			st, err := s.RunStats(spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = st
		}(i)
	}
	wg.Wait()
	for i := 2; i < n; i += 2 {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("goroutine %d saw different stats for an identical spec", i)
		}
	}
	m := s.Metrics()
	// 1 + n/2 distinct digests; every duplicate request is served
	// without executing — as a coalesced join if it arrived while the
	// first execution was in flight, as a memory hit otherwise (the
	// split depends on scheduling, the sum does not).
	if want := int64(1 + n/2); m.RunMisses != want {
		t.Errorf("misses %d, want %d", m.RunMisses, want)
	}
	if want := int64(n/2 - 1); m.RunHits+m.RunCoalesced != want {
		t.Errorf("hits %d + coalesced %d, want %d total", m.RunHits, m.RunCoalesced, want)
	}
}

// TestUncacheableCountsAndExecutes: a device without a key bypasses the
// cache every time — two requests, two executions, zero sharing.
func TestUncacheableCountsAndExecutes(t *testing.T) {
	s := newTestStore(t, "")
	spec := accelSpec(t)
	spec.DeviceKey = ""
	a, err := s.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("uncacheable runs of the same spec should still be deterministic")
	}
	m := s.Metrics()
	if m.RunUncacheable != 2 || m.RunHits != 0 || m.RunMisses != 0 {
		t.Errorf("metrics: %+v, want 2 uncacheable and nothing cached", m)
	}
}

// TestDiskRoundtrip: a second store over the same directory — a fresh
// process in disguise — serves the run from disk, byte-identically.
func TestDiskRoundtrip(t *testing.T) {
	dir := t.TempDir()
	spec := accelSpec(t)

	cold := newTestStore(t, dir)
	first, err := cold.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m := cold.Metrics(); m.BytesWritten == 0 {
		t.Fatal("cold store wrote no blob")
	}

	warm := newTestStore(t, dir)
	second, err := warm.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("disk-served stats differ from the original execution")
	}
	m := warm.Metrics()
	if m.RunDiskHits != 1 || m.RunMisses != 0 {
		t.Errorf("warm metrics: %+v, want 1 disk hit / 0 misses", m)
	}
	if m.BytesRead == 0 {
		t.Error("disk hit read no bytes")
	}
}

// TestBadBlobsAreMisses: corrupt, truncated, stale-scheme and
// digest-mismatched blobs must silently re-execute, never error.
func TestBadBlobsAreMisses(t *testing.T) {
	spec := accelSpec(t)
	want, err := spec.run()
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func(path string, valid []byte) []byte{
		"garbage":      func(string, []byte) []byte { return []byte("not json at all {") },
		"truncated":    func(_ string, valid []byte) []byte { return valid[:len(valid)/2] },
		"empty":        func(string, []byte) []byte { return nil },
		"stale-scheme": func(string, []byte) []byte { return []byte(`{"scheme":999,"kind":"run","digest":"x"}`) },
		"wrong-kind": func(path string, valid []byte) []byte {
			return []byte(`{"scheme":1,"kind":"measure","digest":"` + filepath.Base(path) + `"}`)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			seed := newTestStore(t, dir)
			if _, err := seed.RunStats(spec); err != nil {
				t.Fatal(err)
			}
			path := seed.blobPath("run", spec.Digest())
			valid, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(path, valid), 0o644); err != nil {
				t.Fatal(err)
			}
			s := newTestStore(t, dir)
			got, err := s.RunStats(spec)
			if err != nil {
				t.Fatalf("corrupt blob surfaced an error: %v", err)
			}
			if !reflect.DeepEqual(got, cloneStats(want)) {
				t.Error("re-executed stats differ from direct execution")
			}
			m := s.Metrics()
			if m.RunDiskHits != 0 || m.RunMisses != 1 {
				t.Errorf("metrics: %+v, want the corrupt blob to be a miss", m)
			}
		})
	}
}

// TestMeasureCacheAndClone: measure-level hits skip compute entirely,
// and the returned record's slice is a private copy.
func TestMeasureCacheAndClone(t *testing.T) {
	s := newTestStore(t, "")
	spec := MeasureSpec{Config: sim.HighPerfConfig(), Workload: testWorkload(t), MaxCycles: 1 << 30}
	calls := 0
	compute := func() (MeasureRecord, error) {
		calls++
		return MeasureRecord{
			BaselineCycles: 123,
			Modes:          []ModeResult{{SimCycles: 7}},
		}, nil
	}
	first, err := s.Measure(spec, compute)
	if err != nil {
		t.Fatal(err)
	}
	first.Modes[0].SimCycles = -1
	second, err := s.Measure(spec, compute)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("compute called %d times, want 1", calls)
	}
	if second.Modes[0].SimCycles != 7 {
		t.Error("cached record aliased by a caller's mutation")
	}
	m := s.Metrics()
	if m.MeasureMisses != 1 || m.MeasureHits != 1 {
		t.Errorf("metrics: %+v, want 1 measure miss / 1 hit", m)
	}
}

// TestMeasureErrorCachedInMemoryOnly: a failed computation is
// remembered (the spec is deterministic — retrying cannot help) but
// never written to disk.
func TestMeasureErrorCachedInMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir)
	spec := MeasureSpec{Config: sim.HighPerfConfig(), Workload: testWorkload(t), MaxCycles: 1 << 30}
	calls := 0
	compute := func() (MeasureRecord, error) {
		calls++
		return MeasureRecord{}, os.ErrDeadlineExceeded
	}
	if _, err := s.Measure(spec, compute); err == nil {
		t.Fatal("want error from compute")
	}
	if _, err := s.Measure(spec, compute); err == nil {
		t.Fatal("want cached error on second request")
	}
	if calls != 1 {
		t.Errorf("compute called %d times, want 1 (error cached)", calls)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("error run left %d files on disk, want none", len(entries))
	}
}
