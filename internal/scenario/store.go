package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Store is a concurrency-safe, content-addressed cache of simulation
// results, keyed by canonical spec digests. It caches at two levels —
// single runs (Spec → sim.Stats) and full measurements (MeasureSpec →
// MeasureRecord) — in memory always, and in a directory of versioned
// JSON blobs when one is configured. Identical specs requested
// concurrently execute once (singleflight); everyone else blocks on
// the first execution and shares its result.
//
// A nil *Store is valid and means "no caching": every method executes
// the work directly, so callers never branch on cache availability.
//
// The disk layer is strictly best-effort and can only produce misses,
// never wrong results or errors: a blob that is unreadable, corrupt,
// from another scheme version, or digest-mismatched is ignored and the
// run re-executes. Run errors are cached in memory for the process
// lifetime (the spec is deterministic, so retrying cannot help) but
// never written to disk.
type Store struct {
	dir        string
	noCkptFork bool

	mu       sync.Mutex
	runs     map[Digest]*runEntry
	measures map[Digest]*measureEntry
	ckpts    map[Digest]*ckptEntry
	// statics caches static-model predictions by the same MeasureSpec
	// digest in its own namespace (see static.go); lazily allocated so
	// stores that never predict pay nothing.
	statics map[Digest]*staticEntry

	// Counters are atomics so Metrics can snapshot without the map
	// lock.
	runHits, runMisses, runDiskHits, runUncacheable, runCoalesced      atomic.Int64
	measHits, measMisses, measDiskHits, measUncacheable, measCoalesced atomic.Int64
	ckptForks, ckptWarmups, ckptDiskHits                               atomic.Int64
	staticHits, staticMisses, staticUncacheable, staticCoalesced       atomic.Int64
	bytesRead, bytesWritten                                            atomic.Int64
}

type runEntry struct {
	once  sync.Once
	done  atomic.Bool
	stats sim.Stats
	err   error
}

type measureEntry struct {
	once sync.Once
	done atomic.Bool
	rec  MeasureRecord
	err  error
}

// ckptEntry singleflights one warmup family's shared checkpoint. ck
// stays nil when the family is unforkable (negative-cached: the warmup
// probe runs once, later members skip straight to direct runs).
type ckptEntry struct {
	once sync.Once
	ck   *sim.Checkpoint
}

// NewStore returns a store. dir == "" keeps the cache in memory only;
// otherwise dir is created if needed and used for persistent blobs.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("scenario: cache dir: %w", err)
		}
	}
	return &Store{
		dir:      dir,
		runs:     make(map[Digest]*runEntry),
		measures: make(map[Digest]*measureEntry),
		ckpts:    make(map[Digest]*ckptEntry),
	}, nil
}

// DisableCheckpointForking makes every cache miss execute its full
// warmup prefix instead of forking off a shared warm checkpoint
// (cmd/figures -no-ckpt-fork; the byte-identity check in scripts/
// check.sh diffs the two paths). Call before issuing work.
func (s *Store) DisableCheckpointForking() {
	if s != nil {
		s.noCkptFork = true
	}
}

// RunStats executes the spec — or returns the cached sim.Stats of a
// digest-equal earlier run. The returned Stats is a private copy;
// callers may mutate it freely.
func (s *Store) RunStats(spec Spec) (sim.Stats, error) {
	if s == nil {
		return spec.run()
	}
	if !spec.Cacheable() {
		s.runUncacheable.Add(1)
		return spec.run()
	}
	d := spec.Digest()
	s.mu.Lock()
	e, ok := s.runs[d]
	if !ok {
		e = &runEntry{}
		s.runs[d] = e
	}
	s.mu.Unlock()

	// A pre-existing entry that has not completed means this caller is
	// about to block on someone else's in-flight execution — that is a
	// coalesced request, not a plain memory hit. Sampled before the
	// once.Do so the classification reflects what the caller actually
	// waited on.
	joined := ok && !e.done.Load()
	ran := false
	e.once.Do(func() {
		ran = true
		if st, ok := s.loadRunBlob(d); ok {
			e.stats = st
			s.runDiskHits.Add(1)
			return
		}
		s.runMisses.Add(1)
		e.stats, e.err = s.computeRun(spec)
		if e.err == nil {
			s.saveRunBlob(d, e.stats)
		}
	})
	e.done.Store(true)
	if !ran {
		if joined {
			s.runCoalesced.Add(1)
		} else {
			s.runHits.Add(1)
		}
	}
	return cloneStats(e.stats), e.err
}

// Measure returns the cached MeasureRecord for the spec, or computes
// it once via compute. The compute closure typically issues its
// constituent runs through s.RunStats, so run-level deduplication
// applies even when the measure level misses.
func (s *Store) Measure(spec MeasureSpec, compute func() (MeasureRecord, error)) (MeasureRecord, error) {
	if s == nil {
		return compute()
	}
	if !spec.Cacheable() {
		s.measUncacheable.Add(1)
		return compute()
	}
	d := spec.Digest()
	s.mu.Lock()
	e, ok := s.measures[d]
	if !ok {
		e = &measureEntry{}
		s.measures[d] = e
	}
	s.mu.Unlock()

	joined := ok && !e.done.Load()
	ran := false
	e.once.Do(func() {
		ran = true
		if rec, ok := s.loadMeasureBlob(d); ok {
			e.rec = rec
			s.measDiskHits.Add(1)
			return
		}
		s.measMisses.Add(1)
		e.rec, e.err = compute()
		if e.err == nil {
			s.saveMeasureBlob(d, e.rec)
		}
	})
	e.done.Store(true)
	if !ran {
		if joined {
			s.measCoalesced.Add(1)
		} else {
			s.measHits.Add(1)
		}
	}
	return e.rec.Clone(), e.err
}

// computeRun executes a cache-missed spec: through the warm-checkpoint
// fast path when its warmup family has a usable shared snapshot, with a
// direct full run otherwise. Both paths produce bit-identical Stats
// (the checkpoint differential suite in internal/sim enforces it), so
// the cached result is path-independent.
func (s *Store) computeRun(spec Spec) (sim.Stats, error) {
	if ck := s.warmCheckpoint(spec); ck != nil {
		if st, err, ok := spec.resumeFrom(ck); ok {
			s.ckptForks.Add(1)
			return st, err
		}
	}
	return spec.run()
}

// warmCheckpoint returns the spec's shared warm checkpoint, running the
// warmup prefix (or loading its disk blob) on the family's first use.
// nil means "run directly": forking disabled, spec unforkable, or the
// family probed unforkable earlier.
func (s *Store) warmCheckpoint(spec Spec) *sim.Checkpoint {
	if s.noCkptFork || !spec.forkable() {
		return nil
	}
	d := spec.warmupDigest()
	s.mu.Lock()
	e, ok := s.ckpts[d]
	if !ok {
		e = &ckptEntry{}
		s.ckpts[d] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		if ck, ok := s.loadCkptBlob(d); ok {
			e.ck = ck
			s.ckptDiskHits.Add(1)
			return
		}
		s.ckptWarmups.Add(1)
		e.ck = spec.warmup()
		if e.ck != nil {
			s.saveCkptBlob(d, e.ck)
		}
	})
	return e.ck
}

// cloneStats deep-copies a Stats so cached canonical copies are never
// aliased by callers.
func cloneStats(st sim.Stats) sim.Stats {
	out := st
	out.AccelEvents = append([]sim.AccelEvent(nil), st.AccelEvents...)
	out.PipeTrace = append([]sim.PipeEvent(nil), st.PipeTrace...)
	return out
}

// Metrics is a point-in-time snapshot of store activity. It is the one
// source of truth for cache observability: cmd/figures' stderr line and
// scenariod's /metrics endpoint both render this snapshot.
type Metrics struct {
	// Run-level counters. Hits are served from completed memory
	// entries, Coalesced joined an execution that was still in flight
	// (the singleflight dedup — under a multi-client daemon this is the
	// cross-client sharing), DiskHits loaded the blob directory, Misses
	// executed the simulator, Uncacheable runs bypassed the cache
	// (device without a canonical key).
	RunHits, RunMisses, RunDiskHits, RunUncacheable, RunCoalesced int64
	// Measure-level counters, same meaning.
	MeasureHits, MeasureMisses, MeasureDiskHits, MeasureUncacheable, MeasureCoalesced int64
	// Checkpoint counters: Forks resumed from a shared warm snapshot,
	// Warmups executed a warmup prefix to produce (or probe for) one,
	// DiskHits loaded one from the blob directory.
	CkptForks, CkptWarmups, CkptDiskHits int64
	// Static-prediction counters (memory-only level, see
	// Store.StaticPrediction).
	StaticHits, StaticMisses, StaticUncacheable, StaticCoalesced int64
	// BytesRead/BytesWritten count disk-blob traffic.
	BytesRead, BytesWritten int64
}

// Metrics snapshots the counters. Safe on a nil store (all zero).
func (s *Store) Metrics() Metrics {
	if s == nil {
		return Metrics{}
	}
	return Metrics{
		RunHits:            s.runHits.Load(),
		RunMisses:          s.runMisses.Load(),
		RunDiskHits:        s.runDiskHits.Load(),
		RunUncacheable:     s.runUncacheable.Load(),
		RunCoalesced:       s.runCoalesced.Load(),
		MeasureHits:        s.measHits.Load(),
		MeasureMisses:      s.measMisses.Load(),
		MeasureDiskHits:    s.measDiskHits.Load(),
		MeasureUncacheable: s.measUncacheable.Load(),
		MeasureCoalesced:   s.measCoalesced.Load(),
		CkptForks:          s.ckptForks.Load(),
		CkptWarmups:        s.ckptWarmups.Load(),
		CkptDiskHits:       s.ckptDiskHits.Load(),
		StaticHits:         s.staticHits.Load(),
		StaticMisses:       s.staticMisses.Load(),
		StaticUncacheable:  s.staticUncacheable.Load(),
		StaticCoalesced:    s.staticCoalesced.Load(),
		BytesRead:          s.bytesRead.Load(),
		BytesWritten:       s.bytesWritten.Load(),
	}
}

// DedupRatio is the fraction of cacheable requests served without
// executing the simulator: (hits + coalesced + disk hits) / all
// cacheable requests, across both levels. Zero when nothing was
// requested.
func (m Metrics) DedupRatio() float64 {
	served := m.RunHits + m.RunCoalesced + m.RunDiskHits +
		m.MeasureHits + m.MeasureCoalesced + m.MeasureDiskHits
	total := served + m.RunMisses + m.MeasureMisses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// Sub returns the counter-wise difference m - prev, for reporting the
// activity of one request phase against a running store (scenarioload
// samples /metrics before and after each phase).
func (m Metrics) Sub(prev Metrics) Metrics {
	return Metrics{
		RunHits:            m.RunHits - prev.RunHits,
		RunMisses:          m.RunMisses - prev.RunMisses,
		RunDiskHits:        m.RunDiskHits - prev.RunDiskHits,
		RunUncacheable:     m.RunUncacheable - prev.RunUncacheable,
		RunCoalesced:       m.RunCoalesced - prev.RunCoalesced,
		MeasureHits:        m.MeasureHits - prev.MeasureHits,
		MeasureMisses:      m.MeasureMisses - prev.MeasureMisses,
		MeasureDiskHits:    m.MeasureDiskHits - prev.MeasureDiskHits,
		MeasureUncacheable: m.MeasureUncacheable - prev.MeasureUncacheable,
		MeasureCoalesced:   m.MeasureCoalesced - prev.MeasureCoalesced,
		CkptForks:          m.CkptForks - prev.CkptForks,
		CkptWarmups:        m.CkptWarmups - prev.CkptWarmups,
		CkptDiskHits:       m.CkptDiskHits - prev.CkptDiskHits,
		StaticHits:         m.StaticHits - prev.StaticHits,
		StaticMisses:       m.StaticMisses - prev.StaticMisses,
		StaticUncacheable:  m.StaticUncacheable - prev.StaticUncacheable,
		StaticCoalesced:    m.StaticCoalesced - prev.StaticCoalesced,
		BytesRead:          m.BytesRead - prev.BytesRead,
		BytesWritten:       m.BytesWritten - prev.BytesWritten,
	}
}

// String renders the one-line report cmd/figures prints to stderr.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"scenario store: runs %d hit / %d coalesced / %d disk / %d miss / %d uncacheable | measures %d hit / %d coalesced / %d disk / %d miss / %d uncacheable | ckpt %d fork / %d warmup / %d disk | static %d hit / %d coalesced / %d miss / %d uncacheable | %d B read, %d B written | dedup %.1f%%",
		m.RunHits, m.RunCoalesced, m.RunDiskHits, m.RunMisses, m.RunUncacheable,
		m.MeasureHits, m.MeasureCoalesced, m.MeasureDiskHits, m.MeasureMisses, m.MeasureUncacheable,
		m.CkptForks, m.CkptWarmups, m.CkptDiskHits,
		m.StaticHits, m.StaticCoalesced, m.StaticMisses, m.StaticUncacheable,
		m.BytesRead, m.BytesWritten, 100*m.DedupRatio())
}

// diskBlob is the on-disk JSON envelope. Scheme and digest are
// verified on load; either mismatching turns the blob into a miss.
type diskBlob struct {
	Scheme  int            `json:"scheme"`
	Kind    string         `json:"kind"`
	Digest  string         `json:"digest"`
	Run     *sim.Stats     `json:"run,omitempty"`
	Measure *MeasureRecord `json:"measure,omitempty"`
	// Ckpt holds a sim.Checkpoint in its own binary wire format
	// (base64 inside the JSON envelope); the checkpoint codec's magic
	// and version header is verified again on decode.
	Ckpt []byte `json:"ckpt,omitempty"`
}

// blobPath is the sharded location of one envelope: blobs spread over
// 256 subdirectories named by the first two hex digits of the digest.
// A warm fleet-serving store accumulates one file per distinct (kind,
// digest); a flat directory degrades on lookup and temp-file creation
// long before the cache itself is large (classic dirent scaling), so
// the digest prefix — uniform by construction, SHA-256 — spreads the
// load. Blobs written by pre-shard revisions sit directly in dir; they
// are still found via legacyBlobPath, so an upgrade invalidates
// nothing.
func (s *Store) blobPath(kind string, d Digest) string {
	h := d.String()
	return filepath.Join(s.dir, h[:2], kind+"-"+h+".json")
}

// legacyBlobPath is the pre-shard flat location, read (never written)
// for transparent cache carry-over across the layout upgrade.
func (s *Store) legacyBlobPath(kind string, d Digest) string {
	return filepath.Join(s.dir, kind+"-"+d.String()+".json")
}

// loadBlob reads and verifies one envelope, checking the sharded
// location first and falling back to the legacy flat layout. Any
// failure is a miss.
func (s *Store) loadBlob(kind string, d Digest) (diskBlob, bool) {
	if s.dir == "" {
		return diskBlob{}, false
	}
	data, err := os.ReadFile(s.blobPath(kind, d))
	if err != nil {
		data, err = os.ReadFile(s.legacyBlobPath(kind, d))
	}
	if err != nil {
		return diskBlob{}, false
	}
	var b diskBlob
	if json.Unmarshal(data, &b) != nil {
		return diskBlob{}, false
	}
	if b.Scheme != SchemeVersion || b.Kind != kind || b.Digest != d.String() {
		return diskBlob{}, false
	}
	s.bytesRead.Add(int64(len(data)))
	return b, true
}

// saveBlob writes one envelope via temp-file + rename so concurrent
// processes never observe partial blobs. The temp file lives in the
// destination shard directory so the rename stays within one
// filesystem directory (atomic everywhere). Failures are silently
// ignored: the disk layer is an optimization, not a requirement.
func (s *Store) saveBlob(kind string, d Digest, b diskBlob) {
	if s.dir == "" {
		return
	}
	b.Scheme = SchemeVersion
	b.Kind = kind
	b.Digest = d.String()
	data, err := json.Marshal(b)
	if err != nil {
		return
	}
	shard := filepath.Dir(s.blobPath(kind, d))
	if os.MkdirAll(shard, 0o755) != nil {
		return
	}
	tmp, err := os.CreateTemp(shard, kind+"-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), s.blobPath(kind, d)) != nil {
		os.Remove(tmp.Name())
		return
	}
	s.bytesWritten.Add(int64(len(data)))
}

func (s *Store) loadRunBlob(d Digest) (sim.Stats, bool) {
	b, ok := s.loadBlob("run", d)
	if !ok || b.Run == nil {
		return sim.Stats{}, false
	}
	return *b.Run, true
}

func (s *Store) saveRunBlob(d Digest, st sim.Stats) {
	s.saveBlob("run", d, diskBlob{Run: &st})
}

func (s *Store) loadMeasureBlob(d Digest) (MeasureRecord, bool) {
	b, ok := s.loadBlob("measure", d)
	if !ok || b.Measure == nil {
		return MeasureRecord{}, false
	}
	return *b.Measure, true
}

func (s *Store) saveMeasureBlob(d Digest, rec MeasureRecord) {
	s.saveBlob("measure", d, diskBlob{Measure: &rec})
}

func (s *Store) loadCkptBlob(d Digest) (*sim.Checkpoint, bool) {
	b, ok := s.loadBlob("ckpt", d)
	if !ok || b.Ckpt == nil {
		return nil, false
	}
	ck, err := sim.UnmarshalCheckpoint(b.Ckpt)
	if err != nil {
		return nil, false
	}
	return ck, true
}

func (s *Store) saveCkptBlob(d Digest, ck *sim.Checkpoint) {
	s.saveBlob("ckpt", d, diskBlob{Ckpt: ck.MarshalBinary()})
}
