package scenario

import (
	"repro/internal/isa"
	"repro/internal/sim"
)

// Warm-checkpoint forking.
//
// A sweep varies post-warmup fields — Mode, PartialSpeculation,
// RecordAccelEvents — over one program on one core, so every variant
// re-executes an identical warmup prefix up to the first accelerator
// fetch. The store exploits that: the first cacheable miss of a warmup
// family runs the prefix once under Config.WarmupCanonical, snapshots
// the paused core, and every variant (including the first) resumes from
// the shared sim.Checkpoint instead of re-simulating the prefix. The
// snapshot-legality and prefix-identity arguments live in DESIGN.md
// ("Warm-state checkpointing"); the resulting Stats are bit-identical to
// a never-paused run, which the sim-level differential suite enforces.
//
// Forking keys on the warmup digest: the Spec digest with the canonical
// config replaced by its warmup-canonical form. Specs differing only in
// post-warmup fields collide on it — exactly the sharing we want. The
// ordinary digest/SchemeVersion rules are the invalidation story: any
// encoding or semantics change bumps SchemeVersion, which salts this
// digest too, so stale disk checkpoints read as misses.

// minForkCycles gates forking: prefixes shorter than this resume in
// about the time they take to re-simulate, so the snapshot machinery
// would only add overhead and disk traffic.
const minForkCycles = 2_000

// warmupDigest is the spec's content address with post-warmup config
// fields erased: equal warmup digests mean bit-identical warmup
// prefixes, so the specs may share one warm checkpoint.
func (sp Spec) warmupDigest() Digest {
	e := newEncoder("ckpt")
	e.config(sp.Config.WarmupCanonical())
	e.programRef(sp.Program)
	e.bool(sp.NewDevice != nil)
	e.str(sp.DeviceKey)
	e.i64(sp.MaxCycles)
	return e.sum()
}

// WarmupFamily returns the digest grouping specs that share a warm
// checkpoint, and whether the spec participates in forking at all
// (cacheable and statically forkable). scenariod's scheduler uses it to
// batch compatible jobs: parking the rest of a family until its first
// member has produced the shared checkpoint keeps a burst of identical
// sweeps from pinning every worker on one singleflighted warmup.
func (sp Spec) WarmupFamily() (Digest, bool) {
	if !sp.Cacheable() || !sp.forkable() {
		return Digest{}, false
	}
	return sp.warmupDigest(), true
}

// forkable reports whether the warm-checkpoint path can apply at all:
// the program must invoke an accelerator (otherwise there is no warmup
// boundary to pause at) through a constructible device, and the prefix
// ahead of the first accelerator instruction must plausibly clear
// minForkCycles. When no backward branch precedes that instruction the
// prefix is straight-line, executing exactly its static length, so a
// short one is rejected here for free instead of by a probe simulation
// (the stock figure sweeps are all this shape). A loop in the prefix
// makes the static length a useless lower bound; the probe decides.
func (sp Spec) forkable() bool {
	if sp.NewDevice == nil {
		return false
	}
	loop := false
	for i, in := range sp.Program.Code {
		switch {
		case in.Op == isa.OpAccel:
			return loop || i >= minForkCycles
		case in.Op.IsBranch() && in.Imm <= int64(i):
			loop = true
		}
	}
	return false
}

// warmup runs the spec's warmup prefix under the warmup-canonical
// config and snapshots the core at the accel-fetch boundary. A nil
// return means the family is not worth (or not able to) fork: the
// program halted or errored before the boundary, the prefix is too
// short, or the device cannot be snapshotted. Callers negative-cache
// the nil so the probe runs once per family.
func (sp Spec) warmup() *sim.Checkpoint {
	core, err := sim.New(sp.Config.WarmupCanonical(), sp.Program, sp.NewDevice())
	if err != nil {
		return nil
	}
	paused, err := core.RunToAccelFetch(sp.MaxCycles)
	if err != nil || !paused || core.Cycle() < minForkCycles {
		return nil
	}
	ck, err := core.Checkpoint()
	if err != nil {
		return nil
	}
	return ck
}

// resumeFrom forks the spec off a shared warm checkpoint and runs it to
// completion. ok=false means the snapshot was unusable for this spec
// (config or program incompatibility) and the caller should fall back
// to a direct run; with ok=true the error is the run's own and is as
// authoritative as a direct run's (the pause machinery re-raises budget
// and deadlock errors bit-identically).
func (sp Spec) resumeFrom(ck *sim.Checkpoint) (sim.Stats, error, bool) {
	core, err := sim.NewFromCheckpoint(sp.Config, sp.Program, sp.NewDevice(), ck)
	if err != nil {
		return sim.Stats{}, nil, false
	}
	res, err := core.Run(sp.MaxCycles)
	if err != nil {
		return sim.Stats{}, err, true
	}
	return res.Stats, nil, true
}
