package scenario

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/accel"
	"repro/internal/isa"
	"repro/internal/sim"
)

// warmupHeavySpec builds a spec whose program spins a long scalar
// warmup loop before its accelerator region — the shape warm-checkpoint
// forking exists for. iters=2000 gives a prefix comfortably past
// minForkCycles.
func warmupHeavySpec(t testing.TB, mode accel.Mode, iters int64) Spec {
	t.Helper()
	b := isa.NewBuilder()
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), iters)
	b.Label("warm")
	b.AddI(isa.R(3), isa.R(3), 7)
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(2), "warm")
	b.MovI(isa.R(4), 0)
	b.MovI(isa.R(5), 20)
	b.Label("accel")
	b.Accel(isa.R(6), 0, isa.R(3))
	b.AddI(isa.R(4), isa.R(4), 1)
	b.Blt(isa.R(4), isa.R(5), "accel")
	b.Halt()
	cfg := sim.HighPerfConfig()
	cfg.Mode = mode
	return Spec{
		Config:    cfg,
		Program:   b.MustBuild(),
		NewDevice: func() isa.AccelDevice { return accel.NewFixedLatency(40) },
		DeviceKey: "fixed:lat=40",
		MaxCycles: 1 << 30,
	}
}

// TestCheckpointForkMatchesDirectRun: a sweep over all four modes must
// fork every variant from ONE shared warmup, and each forked result
// must be deeply equal to a direct (never-paused) run of the same spec.
func TestCheckpointForkMatchesDirectRun(t *testing.T) {
	s := newTestStore(t, "")
	for _, m := range accel.AllModes {
		spec := warmupHeavySpec(t, m, 2000)
		got, err := s.RunStats(spec)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		want, err := spec.run()
		if err != nil {
			t.Fatalf("%s direct: %v", m, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: forked stats differ from direct run:\nforked: %v\ndirect: %v", m, got, want)
		}
	}
	mtr := s.Metrics()
	if mtr.CkptWarmups != 1 {
		t.Errorf("warmup prefix executed %d times for one family, want 1", mtr.CkptWarmups)
	}
	if mtr.CkptForks != int64(len(accel.AllModes)) {
		t.Errorf("%d forks, want %d (one per mode)", mtr.CkptForks, len(accel.AllModes))
	}
}

// TestCheckpointForkDisabled: -no-ckpt-fork must bypass the warm path
// entirely and still produce identical results.
func TestCheckpointForkDisabled(t *testing.T) {
	forked := newTestStore(t, "")
	direct := newTestStore(t, "")
	direct.DisableCheckpointForking()
	spec := warmupHeavySpec(t, accel.LT, 2000)
	a, err := forked.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := direct.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("checkpoint forking changed the cached result")
	}
	if m := direct.Metrics(); m.CkptWarmups != 0 || m.CkptForks != 0 {
		t.Errorf("disabled store still used the checkpoint path: %+v", m)
	}
	if m := forked.Metrics(); m.CkptForks != 1 {
		t.Errorf("enabled store did not fork: %+v", m)
	}
}

// TestCheckpointShortWarmupNotForked: prefixes below minForkCycles
// negative-cache and fall back to direct runs — once per family, not
// once per member.
func TestCheckpointShortWarmupNotForked(t *testing.T) {
	s := newTestStore(t, "")
	for _, m := range accel.AllModes {
		spec := warmupHeavySpec(t, m, 4) // couple dozen warmup cycles
		if _, err := s.RunStats(spec); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	mtr := s.Metrics()
	if mtr.CkptForks != 0 {
		t.Errorf("short warmup forked %d times, want 0", mtr.CkptForks)
	}
	if mtr.CkptWarmups != 1 {
		t.Errorf("unforkable family probed %d times, want 1 (negative cache)", mtr.CkptWarmups)
	}
}

// TestCheckpointBaselineNotForked: programs without accelerator
// instructions never touch the checkpoint machinery.
func TestCheckpointBaselineNotForked(t *testing.T) {
	s := newTestStore(t, "")
	if _, err := s.RunStats(baselineSpec(t)); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.CkptWarmups != 0 || m.CkptForks != 0 {
		t.Errorf("baseline run touched the checkpoint path: %+v", m)
	}
}

// TestCheckpointDiskBlobSharedAcrossStores: a second store over the
// same directory loads the warm checkpoint from disk instead of
// re-running the warmup, and still produces identical results.
func TestCheckpointDiskBlobSharedAcrossStores(t *testing.T) {
	dir := t.TempDir()
	first := newTestStore(t, dir)
	spec := warmupHeavySpec(t, accel.LT, 2000)
	want, err := first.RunStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m := first.Metrics(); m.CkptWarmups != 1 {
		t.Fatalf("first store: %d warmups, want 1", m.CkptWarmups)
	}

	second := newTestStore(t, dir)
	// A different mode in the same warmup family: the run-level blob
	// differs, the checkpoint blob is shared.
	other := warmupHeavySpec(t, accel.NLNT, 2000)
	got, err := second.RunStats(other)
	if err != nil {
		t.Fatal(err)
	}
	mtr := second.Metrics()
	if mtr.CkptDiskHits != 1 || mtr.CkptWarmups != 0 {
		t.Errorf("second store: %d disk hits / %d warmups, want 1 / 0", mtr.CkptDiskHits, mtr.CkptWarmups)
	}
	if mtr.CkptForks != 1 {
		t.Errorf("second store did not fork from the disk checkpoint: %+v", mtr)
	}
	direct, err := other.run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, direct) {
		t.Error("disk-checkpoint fork differs from direct run")
	}
	_ = want
}

// TestCheckpointForkConcurrent: concurrent first requests across a
// sweep singleflight the warmup and fork race-free (exercised under
// -race in CI's short differential job).
func TestCheckpointForkConcurrent(t *testing.T) {
	s := newTestStore(t, "")
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(accel.AllModes))
	for i := 0; i < 4; i++ {
		for _, m := range accel.AllModes {
			wg.Add(1)
			go func(m accel.Mode) {
				defer wg.Done()
				spec := warmupHeavySpec(t, m, 2000)
				got, err := s.RunStats(spec)
				if err != nil {
					errs <- err
					return
				}
				want, err := spec.run()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("%s: concurrent forked stats diverge", m)
				}
			}(m)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if mtr := s.Metrics(); mtr.CkptWarmups != 1 {
		t.Errorf("concurrent sweep ran %d warmups, want 1", mtr.CkptWarmups)
	}
}
