package core

import (
	"math/rand"
	"testing"
)

func TestPartialSpeculationEndpoints(t *testing.T) {
	p := base()
	b, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// q = 0: pure L modes.
	pt, err := p.PartialSpeculation(0)
	if err != nil {
		t.Fatal(err)
	}
	if !close(pt.PLT, b.Times.LT) || !close(pt.PLNT, b.Times.LNT) {
		t.Errorf("q=0 must reduce to L modes: %+v vs LT=%v LNT=%v", pt, b.Times.LT, b.Times.LNT)
	}
	// q = 1: pure NL modes.
	pt, err = p.PartialSpeculation(1)
	if err != nil {
		t.Fatal(err)
	}
	if !close(pt.PLT, b.Times.NLT) || !close(pt.PLNT, b.Times.NLNT) {
		t.Errorf("q=1 must reduce to NL modes: %+v", pt)
	}
}

func TestPartialSpeculationMonotoneInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		p := randomParams(rng)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.1 {
			pt, err := p.PartialSpeculation(q)
			if err != nil {
				t.Fatal(err)
			}
			if pt.PLT < prev-1e-9 {
				t.Fatalf("PLT not monotone in q for %+v", p)
			}
			prev = pt.PLT
		}
	}
}

func TestPartialSpeculationSandwiched(t *testing.T) {
	// For every q, the partial design sits between the L and NL modes —
	// the simulator's E3 study measures the same ordering.
	p := base()
	b, _ := p.Evaluate()
	for _, q := range []float64{0.1, 0.33, 0.5, 0.9} {
		pt, err := p.PartialSpeculation(q)
		if err != nil {
			t.Fatal(err)
		}
		if pt.PLT < b.Times.LT-1e-9 || pt.PLT > b.Times.NLT+1e-9 {
			t.Errorf("q=%v: PLT %v outside [L_T %v, NL_T %v]", q, pt.PLT, b.Times.LT, b.Times.NLT)
		}
		if pt.PLNT < b.Times.LNT-1e-9 || pt.PLNT > b.Times.NLNT+1e-9 {
			t.Errorf("q=%v: PLNT %v outside [L_NT, NL_NT]", q, pt.PLNT)
		}
	}
}

func TestPartialSpeculationValidation(t *testing.T) {
	p := base()
	if _, err := p.PartialSpeculation(-0.1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := p.PartialSpeculation(1.1); err == nil {
		t.Error("q > 1 accepted")
	}
	bad := p
	bad.IPC = 0
	if _, err := bad.PartialSpeculation(0.5); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestPartialSpeedups(t *testing.T) {
	p := base()
	basev, plt, plnt, err := p.PartialSpeedups(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if plt > basev.LT+1e-9 || plt < basev.NLT-1e-9 {
		t.Errorf("partial L_T speedup %v outside [%v, %v]", plt, basev.NLT, basev.LT)
	}
	if plnt > basev.LNT+1e-9 || plnt < basev.NLNT-1e-9 {
		t.Errorf("partial L_NT speedup %v outside [%v, %v]", plnt, basev.NLNT, basev.LNT)
	}
}
