package core

import (
	"fmt"

	"repro/internal/accel"
)

// This file extends the analytical model to the paper's §VIII
// partial-speculation proposal: a TCA that executes speculatively only
// when every unresolved older branch is high-confidence, and otherwise
// waits like a non-leading design.
//
// First-order treatment: a fraction q of invocations arrive behind a
// low-confidence branch and pay the NL-mode interval; the rest pay the
// L-mode interval. The mode's expected interval time is the mix
//
//	t_PL_x = q·t_NL_x + (1-q)·t_L_x        (x = T or NT)
//
// which interpolates between the L and NL designs exactly as the
// simulator's confidence gate does (experiments.E3 measures the same
// design point).

// PartialTimes holds the partial-speculation interval times for both
// trailing policies.
type PartialTimes struct {
	// PLT is the partial-leading, trailing-allowed time; PLNT the
	// partial-leading, non-trailing time.
	PLT  float64
	PLNT float64
}

// PartialSpeculation evaluates the partial-leading design point.
// lowConfFrac is q, the fraction of invocations gated by a low-confidence
// unresolved branch (measured from a confidence predictor, or estimated
// from branch statistics).
func (p Params) PartialSpeculation(lowConfFrac float64) (PartialTimes, error) {
	if lowConfFrac < 0 || lowConfFrac > 1 {
		return PartialTimes{}, fmt.Errorf("core: low-confidence fraction %v out of [0,1]", lowConfFrac)
	}
	b, err := p.Evaluate()
	if err != nil {
		return PartialTimes{}, err
	}
	mix := func(nl, l float64) float64 { return lowConfFrac*nl + (1-lowConfFrac)*l }
	return PartialTimes{
		PLT:  mix(b.Times.NLT, b.Times.LT),
		PLNT: mix(b.Times.NLNT, b.Times.LNT),
	}, nil
}

// PartialSpeedups returns whole-program speedups for the partial design
// point alongside the four base modes, for comparison tables.
func (p Params) PartialSpeedups(lowConfFrac float64) (base ModeValues, plt, plnt float64, err error) {
	b, err := p.Evaluate()
	if err != nil {
		return ModeValues{}, 0, 0, err
	}
	pt, err := p.PartialSpeculation(lowConfFrac)
	if err != nil {
		return ModeValues{}, 0, 0, err
	}
	var s ModeValues
	for _, m := range accel.AllModes {
		s.set(m, b.TBaseline/b.Times.Get(m))
	}
	return s, b.TBaseline / pt.PLT, b.TBaseline / pt.PLNT, nil
}
