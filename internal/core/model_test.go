package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/accel"
)

// base returns a valid mid-range parameter point.
func base() Params {
	return HPCore().Apply(Params{
		AcceleratableFrac: 0.3,
		InvocationFreq:    0.3 / 100, // 100-instruction granularity
		AccelFactor:       3,
	})
}

func TestValidate(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Fatalf("base params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.AcceleratableFrac = -0.1 },
		func(p *Params) { p.AcceleratableFrac = 1.0 },
		func(p *Params) { p.InvocationFreq = 0 },
		func(p *Params) { p.InvocationFreq = 0.5 }, // v > a
		func(p *Params) { p.IPC = 0 },
		func(p *Params) { p.AccelFactor = 0 },
		func(p *Params) { p.ROBSize = 0 },
		func(p *Params) { p.IssueWidth = 0 },
		func(p *Params) { p.CommitStall = -1 },
		func(p *Params) { p.DrainBeta = -2 },
	}
	for i, mutate := range bad {
		p := base()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	// Explicit latency substitutes for A.
	p := base()
	p.AccelFactor = 0
	p.AccelLatency = 10
	if err := p.Validate(); err != nil {
		t.Errorf("explicit latency rejected: %v", err)
	}
}

func TestBaselineEquation(t *testing.T) {
	p := base()
	b, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// (1): t_baseline = 1/(v·IPC).
	want := 1 / (p.InvocationFreq * p.IPC)
	if !close(b.TBaseline, want) {
		t.Errorf("TBaseline = %v, want %v", b.TBaseline, want)
	}
	// (2): t_accl = a/(v·A·IPC).
	want = p.AcceleratableFrac / (p.InvocationFreq * p.AccelFactor * p.IPC)
	if !close(b.TAccl, want) {
		t.Errorf("TAccl = %v, want %v", b.TAccl, want)
	}
	// (3): t_non_accl = (1-a)/(v·IPC).
	want = (1 - p.AcceleratableFrac) / (p.InvocationFreq * p.IPC)
	if !close(b.TNonAccl, want) {
		t.Errorf("TNonAccl = %v, want %v", b.TNonAccl, want)
	}
	// Interval identity: baseline = accelerated part at 1x + rest.
	if !close(b.TBaseline, b.TNonAccl+p.AcceleratableFrac/(p.InvocationFreq*p.IPC)) {
		t.Error("interval pieces do not sum to baseline")
	}
}

func TestModeEquations(t *testing.T) {
	p := base()
	b, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// (4)
	if want := b.TNonAccl + b.TAccl + b.TDrain + 2*b.TCommit; !close(b.Times.NLNT, want) {
		t.Errorf("NLNT = %v, want %v", b.Times.NLNT, want)
	}
	// (5)
	if want := b.TNonAccl + b.TAccl + b.TCommit; !close(b.Times.LNT, want) {
		t.Errorf("LNT = %v, want %v", b.Times.LNT, want)
	}
	// (6)+(7)
	fill := math.Max(0, b.TDrain+b.TAccl+b.TCommit-b.TROBFill)
	if want := math.Max(b.TNonAccl+fill, b.TAccl+b.TDrain+b.TCommit); !close(b.Times.NLT, want) {
		t.Errorf("NLT = %v, want %v", b.Times.NLT, want)
	}
	// (8)+(9)
	robFull := math.Max(0, b.TAccl-b.TROBFill)
	if want := math.Max(b.TNonAccl+robFull, b.TAccl); !close(b.Times.LT, want) {
		t.Errorf("LT = %v, want %v", b.Times.LT, want)
	}
	// ROB fill time.
	if want := float64(p.ROBSize) / float64(p.IssueWidth); !close(b.TROBFill, want) {
		t.Errorf("TROBFill = %v, want %v", b.TROBFill, want)
	}
}

func TestDrainCappedByNonAccl(t *testing.T) {
	// Very fine-grained invocations: the interval's non-accelerated work
	// is tiny, so the drain estimate must cap at t_non_accl.
	p := base()
	p.InvocationFreq = p.AcceleratableFrac / 2 // 2-instruction granularity
	b, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !close(b.TDrain, b.TNonAccl) {
		t.Errorf("TDrain = %v, want capped at TNonAccl = %v", b.TDrain, b.TNonAccl)
	}
	// Coarse case: cap must not bind; drain equals s_ROB/IPC under the
	// calibrated power law.
	p = base()
	p.InvocationFreq = p.AcceleratableFrac / 1e7
	b, err = p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(p.ROBSize) / p.IPC; !close(b.TDrain, want) {
		t.Errorf("TDrain = %v, want %v (uncapped power law)", b.TDrain, want)
	}
}

func TestExplicitDrainOverride(t *testing.T) {
	p := base()
	p.DrainTime = 7
	b, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if b.TDrain != 7 {
		t.Errorf("TDrain = %v, want explicit 7", b.TDrain)
	}
}

func TestExplicitAccelLatency(t *testing.T) {
	p := base()
	p.AccelLatency = 25
	b, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if b.TAccl != 25 {
		t.Errorf("TAccl = %v, want explicit 25", b.TAccl)
	}
	// The implied acceleration factor inverts equation (2).
	wantA := p.AcceleratableFrac / (p.InvocationFreq * p.IPC * 25)
	if !close(p.EffectiveAccelFactor(), wantA) {
		t.Errorf("EffectiveAccelFactor = %v, want %v", p.EffectiveAccelFactor(), wantA)
	}
}

func TestZeroCoverageIsNeutral(t *testing.T) {
	p := base()
	p.AcceleratableFrac = 0
	p.InvocationFreq = 0
	s, err := p.Speedups()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range accel.AllModes {
		if !close(s.Get(m), 1) {
			t.Errorf("%s: speedup = %v, want 1 with no acceleration", m, s.Get(m))
		}
	}
}

// Property: mode ordering — more concurrency support never hurts.
// t_LT <= t_LNT <= t_NLNT and t_LT <= t_NLT <= t_NLNT.
func TestModeOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		p := randomParams(rng)
		b, err := p.Evaluate()
		if err != nil {
			t.Fatalf("random params invalid: %v (%+v)", err, p)
		}
		const eps = 1e-9
		if b.Times.LT > b.Times.LNT+eps || b.Times.LNT > b.Times.NLNT+eps {
			t.Fatalf("ordering violated (LT %v, LNT %v, NLNT %v) for %+v",
				b.Times.LT, b.Times.LNT, b.Times.NLNT, p)
		}
		if b.Times.LT > b.Times.NLT+eps || b.Times.NLT > b.Times.NLNT+eps {
			t.Fatalf("ordering violated (LT %v, NLT %v, NLNT %v) for %+v",
				b.Times.LT, b.Times.NLT, b.Times.NLNT, p)
		}
	}
}

// Property: the L_T speedup never exceeds A+1, the paper's concurrency
// bound, and equals it only near a = A/(A+1) with negligible penalties.
func TestConcurrencyBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		p := randomParams(rng)
		s, err := p.Speedups()
		if err != nil {
			t.Fatal(err)
		}
		bound := MaxConcurrentSpeedup(p.EffectiveAccelFactor())
		if s.LT > bound+1e-9 {
			t.Fatalf("L_T speedup %v exceeds A+1 = %v for %+v", s.LT, bound, p)
		}
	}
}

func TestPeakAtWorkBalance(t *testing.T) {
	// A = 2 accelerator of 100 instructions: peak L_T speedup of 3 at
	// 67% coverage (paper §VII / Fig. 8).
	best, bestA := 0.0, 0.0
	for a := 0.01; a < 0.995; a += 0.001 {
		p := HPCore().Apply(Params{
			AcceleratableFrac: a,
			InvocationFreq:    a / 100,
			AccelFactor:       2,
		})
		s, err := p.Speedups()
		if err != nil {
			t.Fatal(err)
		}
		if s.LT > best {
			best, bestA = s.LT, a
		}
	}
	if math.Abs(bestA-2.0/3.0) > 0.02 {
		t.Errorf("peak at a = %v, want ~0.667", bestA)
	}
	if math.Abs(best-3.0) > 0.05 {
		t.Errorf("peak speedup = %v, want ~3 (A+1)", best)
	}
	if got := PeakAcceleratableFrac(2); !close(got, 2.0/3.0) {
		t.Errorf("PeakAcceleratableFrac(2) = %v, want 2/3", got)
	}
}

// Property: in the NT modes, speedup decreases (or holds) as granularity
// shrinks with everything else fixed — the per-invocation barrier penalty
// amortizes worse. (No such monotonicity holds for the T modes: the ROB
// fill credit s_ROB/w_issue is a constant per invocation, so when the
// accelerator execution overflows the ROB, finer granularity amortizes the
// credit better — observable in Fig. 2's NL_T curve.)
func TestGranularityMonotonicityNTProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		p := randomParams(rng)
		coarse := p
		coarse.InvocationFreq = p.InvocationFreq / 4 // 4x coarser
		sFine, err := p.Speedups()
		if err != nil {
			t.Fatal(err)
		}
		sCoarse, err := coarse.Speedups()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []accel.Mode{accel.LNT, accel.NLNT} {
			if sFine.Get(m) > sCoarse.Get(m)+1e-9 {
				t.Fatalf("%s: finer granularity faster (%v > %v) for %+v",
					m, sFine.Get(m), sCoarse.Get(m), p)
			}
		}
	}
}

// Fine-grained accelerators with modest A in NT modes can slow the program
// down — the motivating observation of the paper (Fig. 2 right edge).
func TestFineGrainedSlowdown(t *testing.T) {
	p := HPCore().Apply(Params{
		AcceleratableFrac: 0.3,
		InvocationFreq:    0.3 / 3, // 3-instruction granularity
		AccelFactor:       3,
	})
	s, err := p.Speedups()
	if err != nil {
		t.Fatal(err)
	}
	if s.NLNT >= 1 {
		t.Errorf("NL_NT speedup = %v, want < 1 (slowdown) at fine granularity", s.NLNT)
	}
	if s.LT <= 1 {
		t.Errorf("L_T speedup = %v, want > 1 even at fine granularity", s.LT)
	}
}

// Coarse-grained accelerators are insensitive to the mode (Fig. 2 left).
func TestCoarseGrainedModeInsensitive(t *testing.T) {
	p := A72Core().Apply(Params{
		AcceleratableFrac: 0.3,
		InvocationFreq:    0.3 / 1e8,
		AccelFactor:       3,
	})
	s, err := p.Speedups()
	if err != nil {
		t.Fatal(err)
	}
	spread := s.LT - s.NLNT
	if spread/s.LT > 0.001 {
		t.Errorf("mode spread %.4f%% at 1e8 granularity, want negligible", 100*spread/s.LT)
	}
}

// HP cores are more mode-sensitive than LP cores (paper observation 1).
func TestHPMoreSensitiveThanLP(t *testing.T) {
	mk := func(c CoreParams) ModeValues {
		p := c.Apply(Params{
			AcceleratableFrac: 0.3,
			InvocationFreq:    0.3 / 53, // heap-manager-like granularity
			AccelLatency:      1,
		})
		s, err := p.Speedups()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	hp, lp := mk(HPCore()), mk(LPCore())
	hpSpread := (hp.LT - hp.NLNT) / hp.LT
	lpSpread := (lp.LT - lp.NLNT) / lp.LT
	if hpSpread <= lpSpread {
		t.Errorf("HP relative mode spread %.3f not greater than LP %.3f", hpSpread, lpSpread)
	}
}

func TestGranularity(t *testing.T) {
	p := base()
	if g := p.Granularity(); !close(g, 100) {
		t.Errorf("granularity = %v, want 100", g)
	}
	p.InvocationFreq = 0
	if g := p.Granularity(); g != 0 {
		t.Errorf("granularity = %v, want 0 for v=0", g)
	}
}

func TestModeValuesGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var m ModeValues
	m.Get(accel.Mode(99))
}

// randomParams draws a valid random parameter point spanning the model's
// domain.
func randomParams(rng *rand.Rand) Params {
	a := 0.05 + 0.9*rng.Float64()
	g := math.Pow(10, rng.Float64()*6) // granularity 1..1e6
	if g < 1 {
		g = 1
	}
	return Params{
		AcceleratableFrac: a,
		InvocationFreq:    a / g,
		IPC:               0.3 + 3*rng.Float64(),
		AccelFactor:       0.5 + 9*rng.Float64(),
		ROBSize:           16 << rng.Intn(5),
		IssueWidth:        1 + rng.Intn(7),
		CommitStall:       float64(rng.Intn(10)),
	}
}

// quick.Check driver exercising Validate's totality: Evaluate must either
// error or produce finite positive times.
func TestEvaluateTotalityQuick(t *testing.T) {
	f := func(aRaw, vRaw, ipcRaw uint16, rob, width uint8) bool {
		p := Params{
			AcceleratableFrac: float64(aRaw) / float64(math.MaxUint16+1),
			InvocationFreq:    float64(vRaw) / float64(math.MaxUint16+1) / 4,
			IPC:               0.1 + float64(ipcRaw)/8192,
			AccelFactor:       2,
			ROBSize:           1 + int(rob),
			IssueWidth:        1 + int(width)%8,
			CommitStall:       3,
		}
		b, err := p.Evaluate()
		if err != nil {
			return true // rejected inputs are fine
		}
		for _, m := range accel.AllModes {
			v := b.Times.Get(m)
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
