package core

import (
	"fmt"
	"sort"

	"repro/internal/accel"
)

// This file implements the paper's §VIII future-work proposal: "a
// pareto-optimal curve of design implementations could show the trade-off
// between hardware costs, performance, and which (if any) design
// implementations fall outside of the curve and should not be considered."
//
// Costs are first-order relative estimates, like the performance model
// itself: the baseline NL_NT integration is 1.0, and each concurrency
// direction adds the hardware the paper's §III describes.

// ModeCost is the relative hardware cost of one TCA integration mode.
type ModeCost struct {
	// Area and Power are relative to the NL_NT integration (1.0).
	Area  float64
	Power float64
}

// DefaultModeCosts returns documented first-order cost estimates:
//
//   - L support (speculative execution) needs misspeculation rollback:
//     state checkpoints or an undo journal in the device, squash plumbing
//     — estimated +15% area, +12% power over the bare integration.
//   - T support (trailing overlap) needs register/memory dependency
//     resolution against in-flight TCA outputs: LSQ CAM entries, rename
//     hooks, forwarding — estimated +10% area, +8% power.
//   - L_T needs both, plus their interaction (speculative forwarding):
//     +28% area, +23% power.
//
// The absolute numbers are placeholders a real design team would replace;
// the Pareto machinery only needs their ordering, which follows directly
// from the hardware inventory in §III.
func DefaultModeCosts() map[accel.Mode]ModeCost {
	return map[accel.Mode]ModeCost{
		accel.NLNT: {Area: 1.00, Power: 1.00},
		accel.LNT:  {Area: 1.15, Power: 1.12},
		accel.NLT:  {Area: 1.10, Power: 1.08},
		accel.LT:   {Area: 1.28, Power: 1.23},
	}
}

// DesignPoint is one candidate implementation on the cost/performance
// plane.
type DesignPoint struct {
	Mode    accel.Mode
	Speedup float64
	Cost    ModeCost
	// Dominated is set by ParetoAnalyze when another point is at least
	// as fast and strictly cheaper (or as cheap and strictly faster).
	Dominated bool
	// DominatedBy names a dominating mode when Dominated is set.
	DominatedBy accel.Mode
}

// EnergyEfficiency returns speedup per unit power — a proxy for the
// energy argument of the paper's §VII (slowdown burns static energy).
func (d DesignPoint) EnergyEfficiency() float64 { return d.Speedup / d.Cost.Power }

// ParetoAnalyze evaluates the model at p, attaches costs, and marks
// dominated designs. Points are returned sorted by area cost. A point
// dominates another when its speedup is >= and its area is <= with at
// least one strict; ties in both stay undominated.
func ParetoAnalyze(p Params, costs map[accel.Mode]ModeCost) ([]DesignPoint, error) {
	s, err := p.Speedups()
	if err != nil {
		return nil, err
	}
	pts := make([]DesignPoint, 0, len(accel.AllModes))
	for _, m := range accel.AllModes {
		c, ok := costs[m]
		if !ok {
			return nil, fmt.Errorf("core: no cost for mode %s", m)
		}
		pts = append(pts, DesignPoint{Mode: m, Speedup: s.Get(m), Cost: c})
	}
	// Speedups within 0.1% are treated as equal: the first-order model
	// does not resolve finer differences, and a design that costs more
	// area for an unresolvable gain is exactly what the frontier should
	// exclude.
	const speedupEpsilon = 1e-3
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			a, b := &pts[i], pts[j]
			fasterOrTied := b.Speedup >= a.Speedup*(1-speedupEpsilon)
			strictlyFaster := b.Speedup > a.Speedup*(1+speedupEpsilon)
			cheaperOrTied := b.Cost.Area <= a.Cost.Area
			strictlyCheaper := b.Cost.Area < a.Cost.Area
			if fasterOrTied && cheaperOrTied && (strictlyFaster || strictlyCheaper) {
				a.Dominated = true
				a.DominatedBy = b.Mode
				break
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Cost.Area < pts[j].Cost.Area })
	return pts, nil
}

// Frontier filters a ParetoAnalyze result down to the undominated curve.
func Frontier(pts []DesignPoint) []DesignPoint {
	out := make([]DesignPoint, 0, len(pts))
	for _, p := range pts {
		if !p.Dominated {
			out = append(out, p)
		}
	}
	return out
}
