package core

import (
	"testing"

	"repro/internal/accel"
)

func TestDefaultModeCostsOrdering(t *testing.T) {
	c := DefaultModeCosts()
	if len(c) != 4 {
		t.Fatalf("costs for %d modes, want 4", len(c))
	}
	// Hardware inventory ordering: NL_NT < {NL_T, L_NT} < L_T.
	if !(c[accel.NLNT].Area < c[accel.NLT].Area &&
		c[accel.NLT].Area < c[accel.LNT].Area &&
		c[accel.LNT].Area < c[accel.LT].Area) {
		t.Errorf("area ordering broken: %+v", c)
	}
	for m, mc := range c {
		if mc.Power < 1 || mc.Area < 1 {
			t.Errorf("%s: costs below the NL_NT baseline: %+v", m, mc)
		}
	}
}

func TestParetoAnalyzeFineGrained(t *testing.T) {
	// Fine-grained accelerator: big mode spread, so NL_NT (slowest) is
	// on the frontier only by being cheapest, and every point that is
	// both slower and dearer is dominated.
	p := HPCore().Apply(Params{
		AcceleratableFrac: 0.3,
		InvocationFreq:    0.3 / 30,
		AccelFactor:       3,
	})
	pts, err := ParetoAnalyze(p, DefaultModeCosts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Sorted by area.
	for i := 1; i < len(pts); i++ {
		if pts[i].Cost.Area < pts[i-1].Cost.Area {
			t.Error("points not sorted by area")
		}
	}
	// The cheapest (NL_NT) and the fastest (L_T) are always undominated.
	for _, pt := range pts {
		if pt.Mode == accel.NLNT && pt.Dominated {
			t.Error("cheapest design cannot be dominated (nothing is cheaper)")
		}
		if pt.Mode == accel.LT && pt.Dominated {
			t.Error("fastest design cannot be dominated (nothing is faster)")
		}
	}
	// With the default costs, L_NT costs more than NL_T; at fine
	// granularity NL_T is also faster (trailing overlap beats
	// speculation alone per the model), so L_NT must be dominated.
	var lnt DesignPoint
	for _, pt := range pts {
		if pt.Mode == accel.LNT {
			lnt = pt
		}
	}
	if !lnt.Dominated || lnt.DominatedBy != accel.NLT {
		t.Errorf("expected L_NT dominated by NL_T, got %+v", lnt)
	}
	fr := Frontier(pts)
	if len(fr) == 0 || len(fr) >= 4 {
		t.Errorf("frontier size %d, want 1..3", len(fr))
	}
	for _, pt := range fr {
		if pt.Dominated {
			t.Error("frontier contains dominated point")
		}
	}
}

func TestParetoCoarseGrainedCollapses(t *testing.T) {
	// Coarse-grained: all modes have equal speedup, so only the cheapest
	// (NL_NT) survives — the paper's "don't build L_T hardware for a
	// coarse accelerator" takeaway.
	p := HPCore().Apply(Params{
		AcceleratableFrac: 0.3,
		InvocationFreq:    0.3 / 1e8,
		AccelFactor:       3,
	})
	pts, err := ParetoAnalyze(p, DefaultModeCosts())
	if err != nil {
		t.Fatal(err)
	}
	fr := Frontier(pts)
	if len(fr) != 1 || fr[0].Mode != accel.NLNT {
		t.Errorf("coarse-grained frontier = %+v, want only NL_NT", fr)
	}
}

func TestParetoMissingCost(t *testing.T) {
	p := HPCore().Apply(Params{AcceleratableFrac: 0.3, InvocationFreq: 0.003, AccelFactor: 3})
	costs := DefaultModeCosts()
	delete(costs, accel.LT)
	if _, err := ParetoAnalyze(p, costs); err == nil {
		t.Error("missing cost accepted")
	}
}

func TestEnergyEfficiency(t *testing.T) {
	d := DesignPoint{Speedup: 2, Cost: ModeCost{Power: 1.25}}
	if got := d.EnergyEfficiency(); got != 1.6 {
		t.Errorf("efficiency = %v, want 1.6", got)
	}
}
