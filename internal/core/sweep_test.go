package core

import (
	"strings"
	"testing"

	"repro/internal/accel"
)

func TestGranularitySweep(t *testing.T) {
	pts, err := GranularitySweep(base(), 10, 1e9, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 33 {
		t.Fatalf("points = %d, want 33", len(pts))
	}
	// Endpoints hit the requested granularities.
	if g := pts[0].Params.Granularity(); !close(g, 10) {
		t.Errorf("first granularity = %v, want 10", g)
	}
	if g := pts[len(pts)-1].Params.Granularity(); !close(g, 1e9) {
		t.Errorf("last granularity = %v, want 1e9", g)
	}
	// Fig. 2 shape: at the coarse end all modes converge; at the fine end
	// NL_NT is far below L_T and dips under 1.
	coarse, fine := pts[len(pts)-1].Speedups, pts[0].Speedups
	if (coarse.LT-coarse.NLNT)/coarse.LT > 0.001 {
		t.Error("modes did not converge at coarse granularity")
	}
	if fine.NLNT >= 1 {
		t.Errorf("NL_NT = %v at 10-inst granularity, want slowdown", fine.NLNT)
	}
	if fine.LT <= 1 {
		t.Errorf("L_T = %v at 10-inst granularity, want speedup", fine.LT)
	}
}

func TestGranularitySweepValidation(t *testing.T) {
	if _, err := GranularitySweep(base(), 0, 100, 5); err == nil {
		t.Error("accepted min granularity < 1")
	}
	if _, err := GranularitySweep(base(), 100, 10, 5); err == nil {
		t.Error("accepted max <= min")
	}
	if _, err := GranularitySweep(base(), 10, 100, 1); err == nil {
		t.Error("accepted single point")
	}
}

func TestCoverageSweepPeak(t *testing.T) {
	p := base()
	p.AccelFactor = 2
	pts, err := CoverageSweep(p, 100, 199)
	if err != nil {
		t.Fatal(err)
	}
	// Find the L_T peak; the paper's Fig. 8: peak at ~2/3, not at 100%.
	bestI := 0
	for i, pt := range pts {
		if pt.Speedups.LT > pts[bestI].Speedups.LT {
			bestI = i
		}
	}
	peakA := pts[bestI].Params.AcceleratableFrac
	if peakA < 0.6 || peakA > 0.73 {
		t.Errorf("L_T peak at a = %v, want ~0.67", peakA)
	}
	if last := pts[len(pts)-1]; last.Speedups.LT >= pts[bestI].Speedups.LT {
		t.Error("L_T speedup at ~100% coverage must be below the peak")
	}
	// NT modes peak later or at the boundary; their speedups stay below
	// L_T everywhere.
	for _, pt := range pts {
		if pt.Speedups.NLNT > pt.Speedups.LT+1e-9 {
			t.Error("NL_NT exceeded L_T in coverage sweep")
		}
	}
}

func TestHeatmap(t *testing.T) {
	grid, err := Heatmap(HPCore().Apply(Params{AccelFactor: 1.5}), 1e-5, 0.5, 20, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 20 || len(grid[0]) != 24 {
		t.Fatalf("grid is %dx%d, want 20x24", len(grid), len(grid[0]))
	}
	valid, slowdown := 0, 0
	for _, row := range grid {
		for _, cell := range row {
			if !cell.Valid {
				if cell.InvocationFreq <= cell.AcceleratableFrac {
					t.Fatal("feasible cell marked invalid")
				}
				continue
			}
			valid++
			if cell.Speedups.NLNT < 1 {
				slowdown++
			}
		}
	}
	if valid == 0 {
		t.Fatal("no valid cells")
	}
	// With A=1.5 on the HP core there must be both speedup and slowdown
	// regions (Fig. 7's red and blue areas).
	if slowdown == 0 {
		t.Error("expected NL_NT slowdown cells on the HP core at A=1.5")
	}
	if slowdown == valid {
		t.Error("expected some NL_NT speedup cells too")
	}
}

func TestHeatmapValidation(t *testing.T) {
	p := HPCore().Apply(Params{AccelFactor: 2})
	if _, err := Heatmap(p, 0, 1, 4, 4); err == nil {
		t.Error("accepted vMin = 0")
	}
	if _, err := Heatmap(p, 0.1, 0.1, 4, 4); err == nil {
		t.Error("accepted vMax = vMin")
	}
	if _, err := Heatmap(p, 0.001, 0.1, 1, 4); err == nil {
		t.Error("accepted 1-row grid")
	}
}

func TestTimelines(t *testing.T) {
	p := base()
	b, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range accel.AllModes {
		tl, err := p.Timeline(m)
		if err != nil {
			t.Fatal(err)
		}
		if !close(tl.Total, b.Times.Get(m)) {
			t.Errorf("%s: timeline total %v != mode time %v", m, tl.Total, b.Times.Get(m))
		}
		var sum float64
		for _, s := range tl.Segments {
			sum += s.Cycles
		}
		if sum > tl.Total+1e-9 {
			t.Errorf("%s: segments sum %v exceed total %v", m, sum, tl.Total)
		}
		if len(tl.Segments) == 0 {
			t.Errorf("%s: empty timeline", m)
		}
		str := tl.String()
		if !strings.Contains(str, m.String()) {
			t.Errorf("%s: render missing mode name: %s", m, str)
		}
	}
	// NL_NT must show a zero-rate drain segment.
	tl, _ := p.Timeline(accel.NLNT)
	found := false
	for _, s := range tl.Segments {
		if s.Label == "window drain" && s.Rate == 0 {
			found = true
		}
	}
	if !found {
		t.Error("NL_NT timeline missing the window-drain stall segment")
	}
}
