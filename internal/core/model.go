// Package core implements the paper's contribution: a first-order
// analytical model for the performance of tightly-coupled accelerators
// (TCAs) integrated into an out-of-order core with four degrees of support
// for concurrent execution (accel.Mode).
//
// The model follows the interval analysis of Eyerman et al.'s mechanistic
// OoO model: the front end dispatches roughly IPC useful instructions per
// cycle, dropping to zero during TCA-induced stalls. All quantities are
// evaluated over the average inter-invocation interval of 1/v instructions
// (equations (1)–(9) of the paper); whole-program speedup is the ratio of
// baseline to accelerated interval time.
package core

import (
	"fmt"
	"math"

	"repro/internal/accel"
)

// Params are the analytical model inputs — Table I of the paper, plus the
// optional overrides the paper describes (explicit accelerator latency,
// explicit window drain time).
type Params struct {
	// AcceleratableFrac is a, the fraction of baseline dynamic
	// instructions covered by accelerated regions (0 ≤ a < 1).
	AcceleratableFrac float64
	// InvocationFreq is v, accelerator invocations per baseline
	// instruction (0 < v ≤ a; each invocation replaces a/v instructions).
	InvocationFreq float64
	// IPC is the baseline program's average instructions per cycle.
	IPC float64
	// AccelFactor is A, the accelerator's speedup over the core on the
	// acceleratable code: accelerated work executes at A·IPC.
	AccelFactor float64
	// ROBSize is s_ROB.
	ROBSize int
	// IssueWidth is w_issue, the dispatch/issue width.
	IssueWidth int
	// CommitStall is t_commit, the back-end cycles between the end of
	// execution and commit.
	CommitStall float64

	// AccelLatency, when positive, is an explicit per-invocation
	// accelerator execution time in cycles and overrides AccelFactor in
	// equation (2) — "accelerator execution time can either be an
	// explicitly provided latency inserted by the architect, or
	// estimated".
	AccelLatency float64

	// DrainTime, when positive, is an explicit window drain time and
	// overrides the power-law estimate.
	DrainTime float64
	// DrainBeta is the exponent of the Eyerman power law W = α·l^β
	// relating window size to the critical-path length of the
	// instructions in it. Zero selects the default of 2 (the average
	// SPEC fit; critical path grows with the square root of window
	// size).
	DrainBeta float64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case math.IsNaN(p.AcceleratableFrac) || p.AcceleratableFrac < 0 || p.AcceleratableFrac >= 1:
		return fmt.Errorf("core: acceleratable fraction a=%v must be in [0,1)", p.AcceleratableFrac)
	case p.AcceleratableFrac > 0 && p.InvocationFreq <= 0:
		return fmt.Errorf("core: invocation frequency v=%v must be positive when a>0", p.InvocationFreq)
	case p.InvocationFreq > p.AcceleratableFrac:
		return fmt.Errorf("core: v=%v exceeds a=%v (an invocation must replace >= 1 instruction)",
			p.InvocationFreq, p.AcceleratableFrac)
	case p.IPC <= 0:
		return fmt.Errorf("core: IPC=%v must be positive", p.IPC)
	case p.AccelFactor <= 0 && p.AccelLatency <= 0:
		return fmt.Errorf("core: need acceleration factor A>0 or explicit accelerator latency")
	case p.ROBSize < 1:
		return fmt.Errorf("core: ROB size %d must be >= 1", p.ROBSize)
	case p.IssueWidth < 1:
		return fmt.Errorf("core: issue width %d must be >= 1", p.IssueWidth)
	case p.CommitStall < 0:
		return fmt.Errorf("core: commit stall %v must be >= 0", p.CommitStall)
	case p.DrainBeta < 0:
		return fmt.Errorf("core: drain beta %v must be >= 0", p.DrainBeta)
	}
	return nil
}

// Granularity returns a/v, the average number of baseline instructions
// replaced per invocation.
func (p Params) Granularity() float64 {
	if p.InvocationFreq == 0 { //lint:ignore R4 exact sentinel: v is user-set, zero means "no invocations", never a rounded result
		return 0
	}
	return p.AcceleratableFrac / p.InvocationFreq
}

// EffectiveAccelFactor returns A as used by the evaluation: the explicit
// latency converted to an acceleration factor when AccelLatency is set,
// otherwise AccelFactor.
func (p Params) EffectiveAccelFactor() float64 {
	if p.AccelLatency > 0 {
		// t_accl = a/(v·A·IPC) = AccelLatency  =>  A = a/(v·IPC·lat).
		return p.AcceleratableFrac / (p.InvocationFreq * p.IPC * p.AccelLatency)
	}
	return p.AccelFactor
}

// Breakdown carries every intermediate term of one model evaluation, in
// cycles per average interval (1/v instructions).
type Breakdown struct {
	// TBaseline is equation (1): 1/(v·IPC).
	TBaseline float64
	// TAccl is equation (2): the accelerator execution time.
	TAccl float64
	// TNonAccl is equation (3): core time for non-accelerated work.
	TNonAccl float64
	// TDrain is the window drain time used by the NL modes, after the
	// t_non_accl cap of §III-A.
	TDrain float64
	// TROBFill is s_ROB/w_issue, the time to fill the ROB at full
	// dispatch width.
	TROBFill float64
	// TCommit is the commit stall.
	TCommit float64

	// Mode times: equations (4), (5), (7) and (9).
	Times ModeValues
}

// ModeValues holds one float per TCA mode.
type ModeValues struct {
	LT, NLT, LNT, NLNT float64
}

// Get returns the value for a mode.
func (m ModeValues) Get(mode accel.Mode) float64 {
	switch mode {
	case accel.LT:
		return m.LT
	case accel.NLT:
		return m.NLT
	case accel.LNT:
		return m.LNT
	case accel.NLNT:
		return m.NLNT
	}
	panic(fmt.Sprintf("core: unknown mode %v", mode))
}

// set stores the value for a mode.
func (m *ModeValues) set(mode accel.Mode, v float64) {
	switch mode {
	case accel.LT:
		m.LT = v
	case accel.NLT:
		m.NLT = v
	case accel.LNT:
		m.LNT = v
	case accel.NLNT:
		m.NLNT = v
	}
}

// Evaluate computes the full model. It returns an error for invalid
// parameters.
func (p Params) Evaluate() (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	b.TCommit = p.CommitStall
	b.TROBFill = float64(p.ROBSize) / float64(p.IssueWidth)

	//lint:ignore R4 exact sentinels: a and v are user-set inputs, zero means "no acceleration", never a rounded result
	if p.AcceleratableFrac == 0 || p.InvocationFreq == 0 {
		// No acceleration: every mode equals the baseline. Interval
		// analysis needs v>0, so treat the whole program as one
		// interval of unit length.
		b.TBaseline = 1 / p.IPC
		b.TNonAccl = b.TBaseline
		b.Times = ModeValues{LT: b.TBaseline, NLT: b.TBaseline, LNT: b.TBaseline, NLNT: b.TBaseline}
		return b, nil
	}

	a, v := p.AcceleratableFrac, p.InvocationFreq
	b.TBaseline = 1 / (v * p.IPC) // (1)
	if p.AccelLatency > 0 {
		b.TAccl = p.AccelLatency
	} else {
		b.TAccl = a / (v * p.AccelFactor * p.IPC) // (2)
	}
	b.TNonAccl = (1 - a) / (v * p.IPC) // (3)

	// Window drain estimate for the NL modes (§III-A): explicit if
	// given, else the power law, capped by t_non_accl — the window
	// cannot hold more work than one interval supplies.
	drain := p.DrainTime
	if drain <= 0 {
		drain = p.drainPowerLaw()
	}
	if b.TNonAccl < drain {
		drain = b.TNonAccl
	}
	b.TDrain = drain

	// (4) NL_NT: drain, execute, and pay the back end twice.
	b.Times.set(accel.NLNT, b.TNonAccl+b.TAccl+b.TDrain+2*b.TCommit)

	// (5) L_NT: the accelerator overlaps leading work; dispatch stalls
	// for its execution and commit.
	b.Times.set(accel.LNT, b.TNonAccl+b.TAccl+b.TCommit)

	// (6)+(7) NL_T: trailing dispatch continues until the ROB fills
	// during the delayed accelerator execution.
	nlROBFull := math.Max(0, b.TDrain+b.TAccl+b.TCommit-b.TROBFill)
	b.Times.set(accel.NLT, math.Max(b.TNonAccl+nlROBFull, b.TAccl+b.TDrain+b.TCommit))

	// (8)+(9) L_T: full overlap; only an ROB fill on very long
	// accelerator executions stalls the front end.
	robFull := math.Max(0, b.TAccl-b.TROBFill)
	b.Times.set(accel.LT, math.Max(b.TNonAccl+robFull, b.TAccl))

	return b, nil
}

// drainPowerLaw estimates the window drain time from the Eyerman power law
// W = α·l^β. The coefficient α is calibrated from the sustained-rate
// identity IPC = W/l at the configured ROB size, which pins the drain of a
// full window to s_ROB/IPC; the exponent β (default 2) extrapolates to
// other window sizes in sweeps that vary ROB size at fixed IPC.
func (p Params) drainPowerLaw() float64 {
	beta := p.DrainBeta
	if beta == 0 { //lint:ignore R4 exact sentinel: zero means DrainBeta was left unset, select the default exponent
		beta = 2
	}
	w := float64(p.ROBSize)
	lCal := w / p.IPC
	alpha := w / math.Pow(lCal, beta)
	return math.Pow(w/alpha, 1/beta)
}

// Speedups evaluates the model and returns per-mode whole-program speedup
// (baseline time over mode time).
func (p Params) Speedups() (ModeValues, error) {
	b, err := p.Evaluate()
	if err != nil {
		return ModeValues{}, err
	}
	var s ModeValues
	for _, m := range accel.AllModes {
		s.set(m, b.TBaseline/b.Times.Get(m))
	}
	return s, nil
}

// Speedup evaluates a single mode.
func (p Params) Speedup(m accel.Mode) (float64, error) {
	s, err := p.Speedups()
	if err != nil {
		return 0, err
	}
	return s.Get(m), nil
}

// PeakAcceleratableFrac returns the coverage a* at which the L_T mode's
// speedup peaks for acceleration factor A: work is balanced between core
// and TCA when the TCA holds A/(A+1) of it (§VII — "for an accelerator
// with A = 2, the peak overall speedup of 3 occurs when 67% of code is
// acceleratable").
func PeakAcceleratableFrac(a float64) float64 { return a / (a + 1) }

// MaxConcurrentSpeedup returns the model's upper bound on L_T speedup for
// acceleration factor A: A + 1, the paper's "new form of concurrency"
// observation.
func MaxConcurrentSpeedup(a float64) float64 { return a + 1 }

// CoreParams bundles the architecture-dependent subset of Params.
type CoreParams struct {
	IPC         float64
	ROBSize     int
	IssueWidth  int
	CommitStall float64
}

// Apply copies the architecture parameters into p and returns it.
func (c CoreParams) Apply(p Params) Params {
	p.IPC = c.IPC
	p.ROBSize = c.ROBSize
	p.IssueWidth = c.IssueWidth
	p.CommitStall = c.CommitStall
	return p
}

// HPCore is the paper's high-performance core point: 1.8 IPC, 256-entry
// ROB, 4-issue.
func HPCore() CoreParams {
	return CoreParams{IPC: 1.8, ROBSize: 256, IssueWidth: 4, CommitStall: 3}
}

// LPCore is the paper's low-performance core point: 0.5 IPC, 64-entry ROB,
// 2-issue.
func LPCore() CoreParams {
	return CoreParams{IPC: 0.5, ROBSize: 64, IssueWidth: 2, CommitStall: 2}
}

// A72Core approximates the ARM Cortex-A72 used for Fig. 2: 3-wide,
// 128-entry window.
func A72Core() CoreParams {
	return CoreParams{IPC: 1.5, ROBSize: 128, IssueWidth: 3, CommitStall: 3}
}
