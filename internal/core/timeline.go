package core

import (
	"fmt"
	"strings"

	"repro/internal/accel"
)

// Segment is one phase of the average interval from the front end's
// perspective: a label, a duration in cycles, and the effective useful
// dispatch rate during it (IPC while flowing, 0 while stalled, reduced
// while the ROB is full).
type Segment struct {
	Label  string
	Cycles float64
	Rate   float64
}

// Timeline describes the average interval in one mode — the model's view of
// Fig. 3.
type Timeline struct {
	Mode     accel.Mode
	Segments []Segment
	Total    float64
}

// Timeline reconstructs the interval phases for a mode from the model's
// terms. It is illustrative (the figure-3 view); total time always matches
// the mode equation.
func (p Params) Timeline(mode accel.Mode) (Timeline, error) {
	b, err := p.Evaluate()
	if err != nil {
		return Timeline{}, err
	}
	tl := Timeline{Mode: mode, Total: b.Times.Get(mode)}
	add := func(label string, cycles, rate float64) {
		if cycles > 0 {
			tl.Segments = append(tl.Segments, Segment{Label: label, Cycles: cycles, Rate: rate})
		}
	}
	switch mode {
	case accel.NLNT:
		add("leading dispatch", b.TNonAccl, p.IPC)
		add("window drain", b.TDrain, 0)
		add("commit", b.TCommit, 0)
		add("accel execute", b.TAccl, 0)
		add("commit", b.TCommit, 0)
	case accel.LNT:
		add("leading dispatch", b.TNonAccl, p.IPC)
		add("accel execute (overlapped start)", b.TAccl, 0)
		add("commit", b.TCommit, 0)
	case accel.NLT:
		stall := b.Times.NLT - b.TNonAccl
		if stall < 0 {
			stall = 0
		}
		add("dispatch continues", min(b.TNonAccl, tl.Total), p.IPC)
		add("ROB full / accel completes", stall, 0)
	case accel.LT:
		stall := b.Times.LT - b.TNonAccl
		if stall < 0 {
			stall = 0
		}
		add("dispatch continues", b.TNonAccl, p.IPC)
		add("ROB full", stall, 0)
	}
	return tl, nil
}

// String renders the timeline as a proportional ASCII bar.
func (t Timeline) String() string {
	const width = 60
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s |", t.Mode)
	for _, s := range t.Segments {
		n := int(s.Cycles / t.Total * width)
		if n < 1 {
			n = 1
		}
		ch := "#"
		if s.Rate == 0 { //lint:ignore R4 exact sentinel: stall segments are built with a literal zero rate, never computed
			ch = "."
		}
		b.WriteString(strings.Repeat(ch, n))
	}
	fmt.Fprintf(&b, "| %.1f cycles", t.Total)
	for _, s := range t.Segments {
		fmt.Fprintf(&b, "  [%s %.1f]", s.Label, s.Cycles)
	}
	return b.String()
}
