package core

import (
	"fmt"
	"math"
)

// SweepPoint is one evaluated parameter point.
type SweepPoint struct {
	Params   Params
	Speedups ModeValues
}

// GranularitySweep evaluates the model over accelerator granularities
// (instructions replaced per invocation), holding coverage a and the
// acceleration factor fixed — the Fig. 2 axis. Granularities are sampled
// log-uniformly between min and max with the given number of points.
func GranularitySweep(base Params, minGran, maxGran float64, points int) ([]SweepPoint, error) {
	if minGran < 1 || maxGran <= minGran || points < 2 {
		return nil, fmt.Errorf("core: invalid granularity sweep [%v,%v] x%d", minGran, maxGran, points)
	}
	out := make([]SweepPoint, 0, points)
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		g := minGran * math.Pow(maxGran/minGran, frac)
		p := base
		p.InvocationFreq = p.AcceleratableFrac / g
		s, err := p.Speedups()
		if err != nil {
			return nil, fmt.Errorf("core: granularity %v: %w", g, err)
		}
		out = append(out, SweepPoint{Params: p, Speedups: s})
	}
	return out, nil
}

// CoverageSweep evaluates the model over the acceleratable fraction a at a
// fixed granularity (instructions per invocation) — the Fig. 8 axis.
func CoverageSweep(base Params, granularity float64, points int) ([]SweepPoint, error) {
	if granularity < 1 || points < 2 {
		return nil, fmt.Errorf("core: invalid coverage sweep g=%v x%d", granularity, points)
	}
	out := make([]SweepPoint, 0, points)
	for i := 0; i < points; i++ {
		a := float64(i+1) / float64(points+1) // open interval (0,1)
		p := base
		p.AcceleratableFrac = a
		p.InvocationFreq = a / granularity
		s, err := p.Speedups()
		if err != nil {
			return nil, fmt.Errorf("core: coverage %v: %w", a, err)
		}
		out = append(out, SweepPoint{Params: p, Speedups: s})
	}
	return out, nil
}

// HeatmapCell is one (coverage, invocation-frequency) cell of the Fig. 7
// design-space map.
type HeatmapCell struct {
	AcceleratableFrac float64
	InvocationFreq    float64
	Speedups          ModeValues
	// Valid is false where the point is infeasible (v > a).
	Valid bool
}

// Heatmap sweeps coverage linearly over (0,1) and invocation frequency
// log-uniformly over [vMin, vMax], evaluating all four modes per cell.
func Heatmap(base Params, vMin, vMax float64, aSteps, vSteps int) ([][]HeatmapCell, error) {
	if vMin <= 0 || vMax <= vMin || aSteps < 2 || vSteps < 2 {
		return nil, fmt.Errorf("core: invalid heatmap spec v=[%v,%v] %dx%d", vMin, vMax, aSteps, vSteps)
	}
	grid := make([][]HeatmapCell, aSteps)
	for i := 0; i < aSteps; i++ {
		a := float64(i+1) / float64(aSteps+1)
		grid[i] = make([]HeatmapCell, vSteps)
		for j := 0; j < vSteps; j++ {
			frac := float64(j) / float64(vSteps-1)
			v := vMin * math.Pow(vMax/vMin, frac)
			cell := HeatmapCell{AcceleratableFrac: a, InvocationFreq: v}
			if v <= a {
				p := base
				p.AcceleratableFrac = a
				p.InvocationFreq = v
				s, err := p.Speedups()
				if err != nil {
					return nil, err
				}
				cell.Speedups = s
				cell.Valid = true
			}
			grid[i][j] = cell
		}
	}
	return grid, nil
}
