// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (one benchmark per artifact, reporting the
// headline quantities as custom metrics) plus micro-benchmarks of the
// engines underneath.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Benchmarks shrink the simulated sweeps enough to iterate; cmd/figures
// regenerates the full-size artifacts.
package repro

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/staticmodel"
	"repro/internal/workload"
)

// BenchmarkFig2Granularity regenerates the introduction's granularity
// study: analytical speedup for all four modes across 8 decades of
// accelerator granularity.
func BenchmarkFig2Granularity(b *testing.B) {
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(experiments.DefaultFig2())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	fine := last.Points[0].Speedups
	b.ReportMetric(fine.LT, "fine-L_T-speedup")
	b.ReportMetric(fine.NLNT, "fine-NL_NT-speedup")
}

// BenchmarkFig3Timelines regenerates the per-mode interval timelines.
func BenchmarkFig3Timelines(b *testing.B) {
	p := core.HPCore().Apply(core.Params{
		AcceleratableFrac: 0.3, InvocationFreq: 0.003, AccelFactor: 3,
	})
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SyntheticSweep regenerates (a reduced) synthetic
// microbenchmark validation: simulator vs model across invocation counts,
// reporting the worst-case model error.
func BenchmarkFig4SyntheticSweep(b *testing.B) {
	cfg := experiments.DefaultFig4()
	cfg.Units = 150
	cfg.RegionCounts = []int{5, 20, 80}
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = res.MaxAbsError()
	}
	b.ReportMetric(100*worst, "max-error-%")
}

// BenchmarkFig5Heap regenerates (a reduced) heap-manager validation sweep,
// reporting the L_T speedup at the highest call frequency.
func BenchmarkFig5Heap(b *testing.B) {
	cfg := experiments.DefaultFig5()
	cfg.Operations = 200
	cfg.FillerCounts = []int{0, 40, 160}
	var headline float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		headline = res.Rows[0].Result.Mode(accel.LT).SimSpeedup
	}
	b.ReportMetric(headline, "hifreq-L_T-speedup")
}

// BenchmarkFig5HeapWarmupFork measures what warm-checkpoint forking buys
// on a warmup-heavy heap design-space sweep: the Fig. 5 heap workload
// with a 200k-instruction scalar warmup ahead of its accelerated region,
// swept over every post-warmup config variant (four TCA modes x partial
// speculation on/off x accel-event recording on/off = 16 points in one
// warmup family). With forking the store simulates the shared prefix
// once and forks the 16 variants off that checkpoint; Direct
// re-simulates the prefix per point. The
// Fork/Direct pair is the headline claim of warm-state checkpointing:
// Direct ns/op over Fork ns/op should exceed 2x. BENCH_PR6.json records
// both.
func BenchmarkFig5HeapWarmupFork(b *testing.B) {
	w, err := workload.Heap(workload.HeapConfig{
		Operations: 40, FillerPerCall: 0, Prefill: 512, Seed: 7,
		WarmupFiller: 200_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	var specs []scenario.Spec
	for _, m := range accel.AllModes {
		for _, partial := range []bool{false, true} {
			for _, record := range []bool{false, true} {
				cfg := sim.HighPerfConfig()
				cfg.Mode = m
				cfg.PartialSpeculation = partial
				cfg.RecordAccelEvents = record
				specs = append(specs, scenario.Spec{
					Config:    cfg,
					Program:   w.Accelerated,
					NewDevice: w.NewDevice,
					DeviceKey: w.DeviceKey,
					MaxCycles: 4_000_000_000,
				})
			}
		}
	}
	sweep := func(b *testing.B, fork bool) {
		b.Helper()
		var forks, warmups int64
		for i := 0; i < b.N; i++ {
			store, err := scenario.NewStore("")
			if err != nil {
				b.Fatal(err)
			}
			if !fork {
				store.DisableCheckpointForking()
			}
			for _, spec := range specs {
				if _, err := store.RunStats(spec); err != nil {
					b.Fatal(err)
				}
			}
			m := store.Metrics()
			forks += m.CkptForks
			warmups += m.CkptWarmups
		}
		b.ReportMetric(float64(forks)/float64(b.N), "ckpt-forks/op")
		b.ReportMetric(float64(warmups)/float64(b.N), "ckpt-warmups/op")
	}
	b.Run("Fork", func(b *testing.B) { sweep(b, true) })
	b.Run("Direct", func(b *testing.B) { sweep(b, false) })
}

// BenchmarkFig6MatMul regenerates (a reduced) DGEMM validation: 2x2, 4x4
// and 8x8 accelerators in all four modes, reporting the 8x8 L_T speedup.
func BenchmarkFig6MatMul(b *testing.B) {
	cfg := experiments.Fig6Config{
		Core: sim.HighPerfConfig(), N: 32, Block: 16, Tiles: []int{2, 4, 8}, Seed: 3,
	}
	var headline float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		headline = res.Rows[2].Result.Mode(accel.LT).SimSpeedup
	}
	b.ReportMetric(headline, "8x8-L_T-speedup")
}

// BenchmarkFig7Heatmap regenerates the design-space heatmaps (2 cores x 4
// modes), reporting the HP core's NL_NT slowdown share.
func BenchmarkFig7Heatmap(b *testing.B) {
	var share map[string]float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.DefaultFig7())
		if err != nil {
			b.Fatal(err)
		}
		share = res.SlowdownShare()
	}
	b.ReportMetric(100*share["ipc1.8-NL_NT"], "hp-NL_NT-slowdown-%")
}

// BenchmarkFig8Concurrency regenerates the coverage study, reporting the
// L_T peak (the paper's A+1 concurrency headline).
func BenchmarkFig8Concurrency(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.DefaultFig8())
		if err != nil {
			b.Fatal(err)
		}
		peak = res.PeakSpeedup
	}
	b.ReportMetric(peak, "peak-speedup")
}

// BenchmarkE1LogCAComparison regenerates the LogCA-vs-TCA-model extension
// study.
func BenchmarkE1LogCAComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1(experiments.DefaultE1()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Pareto regenerates the hardware-cost Pareto extension study.
func BenchmarkE2Pareto(b *testing.B) {
	gs := []float64{30, 100, 300, 1e3, 1e4, 1e6}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2(core.HPCore(), gs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3PartialSpeculation regenerates the partial-speculation
// extension study (simulated), reporting the squash reduction at the
// highest surprise rate.
func BenchmarkE3PartialSpeculation(b *testing.B) {
	cfg := experiments.DefaultE3()
	cfg.Iterations = 200
	cfg.SkipEvery = []int{3, 8}
	var saved float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := res.Points[0]
		saved = float64(p.FullSquashed - p.PartialSquashed)
	}
	b.ReportMetric(saved, "squashes-avoided")
}

// BenchmarkE4HashStringTCAs regenerates the hash-map/string-compare
// validation study, reporting the hash-map L_T speedup at high frequency.
func BenchmarkE4HashStringTCAs(b *testing.B) {
	// Default operation count: the TCAs are profitable at steady state
	// (cold tables make the hash TCA a net loss; see EXPERIMENTS.md).
	cfg := experiments.DefaultE4()
	cfg.FillerCounts = []int{5, 80}
	var headline float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		headline = res.Rows[0].Result.Mode(accel.LT).SimSpeedup
	}
	b.ReportMetric(headline, "kvstore-L_T-speedup")
}

// BenchmarkE5MultiTCA regenerates the heterogeneous multi-accelerator
// study, reporting its worst model error.
func BenchmarkE5MultiTCA(b *testing.B) {
	cfg := experiments.DefaultE5()
	cfg.Calls = 60
	cfg.FillerCounts = []int{50, 800}
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = res.MaxAbsError()
	}
	b.ReportMetric(100*worst, "max-error-%")
}

// BenchmarkAblationDrainEstimators runs the A1 drain-estimator ablation,
// reporting the NL_NT error of the harness-default estimator.
func BenchmarkAblationDrainEstimators(b *testing.B) {
	w, err := workload.Heap(workload.HeapConfig{
		Operations: 200, FillerPerCall: 40, Prefill: 256, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	var defErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MeasureWorkload(sim.HighPerfConfig(), w)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.DrainAblation(res)
		if err != nil {
			b.Fatal(err)
		}
		defErr = rows[0].NLNTError
	}
	b.ReportMetric(100*defErr, "default-NL_NT-error-%")
}

// BenchmarkAblationLoadOrdering runs the A2 LSQ-disambiguation ablation,
// reporting the IPC gain from the decoupled store AGU.
func BenchmarkAblationLoadOrdering(b *testing.B) {
	w, err := workload.Heap(workload.HeapConfig{
		Operations: 300, FillerPerCall: 10, Prefill: 256, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		ab, err := experiments.LoadOrdering(sim.HighPerfConfig(), w)
		if err != nil {
			b.Fatal(err)
		}
		gain = ab.DecoupledIPC/ab.ConservativeIPC - 1
	}
	b.ReportMetric(100*gain, "ipc-gain-%")
}

// --- engine micro-benchmarks ---

// BenchmarkModelEvaluate measures one analytical model evaluation.
func BenchmarkModelEvaluate(b *testing.B) {
	p := core.HPCore().Apply(core.Params{
		AcceleratableFrac: 0.3, InvocationFreq: 0.003, AccelFactor: 3,
	})
	for i := 0; i < b.N; i++ {
		if _, err := p.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures out-of-order simulation throughput in
// instructions per second on the synthetic workload.
func BenchmarkSimulator(b *testing.B) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Units: 400, UnitLen: 25, Regions: 20, RegionLen: 60, AccelLatency: 12, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var instr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sim.New(sim.HighPerfConfig(), w.Baseline, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(1 << 40)
		if err != nil {
			b.Fatal(err)
		}
		instr += res.Stats.Committed
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(instr)/sec/1e6, "Minstr/s")
	}
}

// BenchmarkStaticRank measures the analytical fast-path tier ranking a
// 1000-point design space of the BenchmarkSimulator workload: profile
// the baseline and accelerated programs once (one O(N) walk each), then
// predict all four mode speedups for every machine variant. The
// headline contract (DESIGN.md, "Analytical fast-path tier") is that
// the whole ranking costs less than ONE cycle-accurate BenchmarkSimulator
// run — that ratio is what makes frontier-pruned sweeps worthwhile.
func BenchmarkStaticRank(b *testing.B) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Units: 400, UnitLen: 25, Regions: 20, RegionLen: 60, AccelLatency: 12, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// A 4-axis grid around the HP core: 5 x 8 x 5 x 5 = 1000 machines.
	base := experiments.StaticMachine(sim.HighPerfConfig())
	var machines []staticmodel.Machine
	for _, dw := range []int{1, 2, 3, 4, 6} {
		for _, rob := range []int{32, 48, 64, 96, 128, 192, 256, 384} {
			for _, alus := range []int{1, 2, 3, 4, 6} {
				for _, mem := range []int{1, 2, 3, 4, 8} {
					m := base
					m.DispatchWidth, m.IssueWidth, m.CommitWidth = dw, dw, dw
					m.ROBSize = rob
					m.IntALUs = alus
					m.MemPorts = mem
					machines = append(machines, m)
				}
			}
		}
	}
	var configs uint64
	var best float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basep, err := staticmodel.NewProfile(w.Baseline)
		if err != nil {
			b.Fatal(err)
		}
		accp, err := staticmodel.NewProfile(w.Accelerated)
		if err != nil {
			b.Fatal(err)
		}
		in := staticmodel.Input{
			Baseline: basep, Accelerated: accp,
			Acceleratable: w.Acceleratable, Invocations: w.Invocations,
			BaselineInstructions: w.BaselineInstructions,
			AccelLatency:         w.AccelLatency,
		}
		best = 0
		for _, m := range machines {
			pred, err := staticmodel.Predict(in, m)
			if err != nil {
				b.Fatal(err)
			}
			if s := pred.Mode(pred.BestMode()).Speedup; s > best {
				best = s
			}
			configs++
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(configs)/sec, "configs/s")
	}
	b.ReportMetric(best, "best-L_T-speedup")
}

// BenchmarkInterpreter measures golden-model throughput.
func BenchmarkInterpreter(b *testing.B) {
	w, err := workload.Synthetic(workload.SyntheticConfig{
		Units: 400, UnitLen: 25, Regions: 20, RegionLen: 60, AccelLatency: 12, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := isa.NewInterp(w.Baseline, nil)
		if err := it.Run(1 << 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHierarchy measures the memory-timing model on an
// L1-resident streaming pattern.
func BenchmarkCacheHierarchy(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultHierarchy())
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now = h.Access(now, uint64(i%512)*64, i%8 == 0)
	}
}
