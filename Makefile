GO ?= go

.PHONY: check build test race bench bench-json figures lint

# The full verification gate: vet + lint + build + race-enabled test suite.
check:
	./scripts/check.sh

# Determinism & simulator-invariant static analysis (see LINT.md).
lint:
	$(GO) run ./cmd/simlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x .

# Machine-readable benchmark summary (ns/op, B/op, allocs/op per bench)
# across the figure suite, the simulator's per-stage microbenchmarks, the
# scenario store's cached-vs-uncached and forked-vs-direct pairs, the
# scenariod cold/warm/duplicate-heavy request regimes, and the analyzer's
# full-repository run.
bench-json:
	$(GO) run ./cmd/benchjson -bench . -pkg ./... -benchtime 1x -out BENCH_PR10.json

figures:
	$(GO) run ./cmd/figures -fig all
